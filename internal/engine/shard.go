package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/metadata"
	"repro/internal/query"
	"repro/internal/semtree"
	"repro/internal/wal"
)

// Shard is one independent slice of a sharded deployment: its own
// semantic R-tree forest, cluster deployment, virtual-time state and
// lock. Shards never share mutable state, so operations on different
// shards proceed fully in parallel; within a shard the same two-level
// locking as the original single-store design applies (an RWMutex for
// tree structure, a per-deployment capacity-1 query slot for the
// simulated phase).
type Shard struct {
	id       int
	attrs    []metadata.Attr
	primary  *cluster.Cluster
	forest   *semtree.Forest
	clusters map[*semtree.Tree]*cluster.Cluster

	// mu keeps tree structure stable: readers share it, mutators hold
	// it exclusively. qslot serializes each deployment's simulation
	// machinery (sim counters, home-unit RNG, lazy id cache); it is a
	// capacity-1 channel semaphore rather than a mutex so waiters can
	// abandon the wait on context cancellation. epoch counts this
	// shard's committed mutations; the engine composes shard epochs
	// into the store-wide epoch.
	mu    sync.RWMutex
	qslot map[*cluster.Cluster]chan struct{}
	epoch atomic.Uint64

	// log is the shard's write-ahead log (nil on a non-durable
	// deployment). Every mutation goes through the stageThen path —
	// stage the record, then apply, then await the group-commit fsync
	// after dropping the write lock — so records land in mutation
	// order and an acknowledged mutation is always on disk before the
	// acknowledgement, while same-shard writers overlap their fsyncs.
	log *wal.Log

	// budget is the configured off-line group budget override
	// (Config.OfflineGroupBudget); 0 keeps the adaptive heuristics.
	budget int
}

// buildShard mirrors the original Store construction over one shard's
// file population: semantic placement into unitCount storage units, the
// primary tree over the grouping predicate, and — under auto-config —
// specialized trees per attribute subset, each with its own deployment.
func buildShard(id int, files []*metadata.File, norm *metadata.Normalizer,
	cfg Config, unitCount int, seed uint64) *Shard {

	treeCfg := cfg.Tree
	treeCfg.Attrs = cfg.Attrs
	clusterCfg := cfg.Cluster
	clusterCfg.Seed = seed

	s := &Shard{id: id, attrs: cfg.Attrs, clusters: map[*semtree.Tree]*cluster.Cluster{},
		budget: cfg.OfflineGroupBudget}

	units := semtree.PlaceSemantic(files, unitCount, norm, cfg.Attrs)
	primaryTree := semtree.Build(units, norm, treeCfg)
	s.primary = cluster.New(primaryTree, clusterCfg)
	s.clusters[primaryTree] = s.primary

	if cfg.AutoConfig {
		s.forest = semtree.AutoConfigure(
			semtree.PlaceSemantic(files, unitCount, norm, metadata.AllAttrs()),
			norm, treeCfg, nil, cfg.AutoConfigThreshold)
		for _, t := range s.forest.Trees() {
			s.clusters[t] = cluster.New(t, clusterCfg)
		}
	}
	s.initSlots()
	return s
}

// restoreShard wraps a deployment around a tree restored from a
// snapshot. Specialized auto-configuration trees are not persisted and
// not rebuilt here, matching the original Load behaviour.
func restoreShard(id int, tree *semtree.Tree, clusterCfg cluster.Config, budget int) *Shard {
	s := &Shard{
		id:       id,
		attrs:    tree.Attrs,
		clusters: map[*semtree.Tree]*cluster.Cluster{},
		budget:   budget,
	}
	s.primary = cluster.New(tree, clusterCfg)
	s.clusters[tree] = s.primary
	s.initSlots()
	return s
}

func (s *Shard) initSlots() {
	s.qslot = make(map[*cluster.Cluster]chan struct{}, len(s.clusters))
	for _, c := range s.clusters {
		s.qslot[c] = make(chan struct{}, 1)
	}
}

// clusterFor picks the deployment serving a query over the given
// attributes: with auto-configuration, the forest member whose grouping
// attributes match best; otherwise the primary tree.
func (s *Shard) clusterFor(attrs []metadata.Attr) *cluster.Cluster {
	if s.forest == nil {
		return s.primary
	}
	if sameAttrs(s.attrs, attrs) {
		return s.primary
	}
	return s.clusters[s.forest.SelectTree(attrs)]
}

// offlineBudget resolves the off-line group budget of a sharded
// fan-out on this shard: the configured override wins; otherwise the
// deployment's shared heuristic budget.
func (s *Shard) offlineBudget(c *cluster.Cluster) int {
	if s.budget > 0 {
		return s.budget
	}
	return c.SharedOfflineBudget()
}

func sameAttrs(a, b []metadata.Attr) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[metadata.Attr]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		if !set[x] {
			return false
		}
	}
	return true
}

// runQueryCtx serializes one deployment's virtual-time machinery around
// f with a cancellable wait: a context cancelled while queued for the
// deployment slot — or observed cancelled once it is acquired — returns
// ctx.Err() without running f. The shard read lock must be held.
func (s *Shard) runQueryCtx(ctx context.Context, c *cluster.Cluster, f func() error) error {
	slot := s.qslot[c]
	select {
	case slot <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-slot }()
	if err := ctx.Err(); err != nil {
		return err
	}
	return f()
}

// answer is one shard's contribution to a fanned-out query.
type answer struct {
	ids []uint64
	// dists holds the normalized squared distance per id for top-k
	// merging (computed only when the engine must merge across shards).
	dists []float64
	// recs maps id → record copy when the query projects records.
	recs map[uint64]metadata.File
	res  cluster.Result
	// pruned reports that the shard was skipped by the MBR test without
	// touching its deployment state.
	pruned bool
}

// point answers a filename point query on this shard. When prune is
// set, a shard whose root Bloom filter rejects the name is skipped
// without touching its deployment state — the filter admits every
// stored name (insertions update unit filters immediately; deletions
// never remove), so a negative proves the shard cannot answer.
func (s *Shard) point(ctx context.Context, q query.Point, prune bool, opts projectOpts) (answer, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if prune && !s.primary.Tree.MayContainPath(q.Filename) {
		return answer{pruned: true}, nil
	}
	var a answer
	err := s.runQueryCtx(ctx, s.primary, func() error {
		a.ids, a.res = s.primary.Point(q)
		s.project(s.primary, &a, opts.records, opts.max)
		return ctx.Err()
	})
	return a, err
}

// projectOpts bounds a shard's record projection: records toggles it,
// max caps the projected ids (0 = all).
type projectOpts struct {
	records bool
	max     int
}

// rangeQuery answers a range query on this shard. When sharded is set
// — the shard is one member of a multi-shard fan-out — a shard whose
// whole population falls outside the query rectangle is skipped without
// drawing on its deployment's RNG or simulation state, and the off-line
// path runs under the shared group budget (the cross-shard union
// supplies breadth, so every shard forgoes the solo 3-group floor).
func (s *Shard) rangeQuery(ctx context.Context, q query.Range, online, sharded bool, opts projectOpts) (answer, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := s.clusterFor(q.Attrs)
	if sharded && !c.Tree.OverlapsRange(q) {
		return answer{pruned: true}, nil
	}
	var a answer
	err := s.runQueryCtx(ctx, c, func() error {
		switch {
		case online:
			a.ids, a.res = c.RangeOnline(q)
		case sharded:
			a.ids, a.res = c.RangeOfflineN(q, s.offlineBudget(c))
		default:
			a.ids, a.res = c.RangeOfflineN(q, s.budget)
		}
		s.project(c, &a, opts.records, opts.max)
		return ctx.Err()
	})
	return a, err
}

// topK answers a top-k query on this shard. When sharded, the off-line
// path runs under the shared group budget. When wantDists — a
// multi-shard merge, or a caller that asked for distances explicitly —
// each candidate's true normalized distance is resolved under the same
// query slot (where the lazy id index is safe to build) so answers can
// be merged by distance at any level above.
func (s *Shard) topK(ctx context.Context, q query.TopK, online, sharded, wantDists, includeRecords bool) (answer, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := s.clusterFor(q.Attrs)
	var a answer
	err := s.runQueryCtx(ctx, c, func() error {
		switch {
		case online:
			a.ids, a.res = c.TopKOnline(q)
		case sharded:
			a.ids, a.res = c.TopKOfflineN(q, s.offlineBudget(c))
		default:
			a.ids, a.res = c.TopKOfflineN(q, s.budget)
		}
		if wantDists {
			a.dists = make([]float64, len(a.ids))
			for i, id := range a.ids {
				if f, ok := c.FileByID(id); ok {
					a.dists[i] = q.Dist(c.Tree.Norm, f)
				} else {
					// A candidate the id index cannot resolve is a stale
					// replica answer (e.g. a pending-deleted file still in
					// the propagated snapshot). Rank it last so it can
					// never displace a live result — the single-deployment
					// rerank skips such ids the same way.
					a.dists[i] = math.Inf(1)
				}
			}
		}
		// Per-shard top-k candidates are already bounded by k, so the
		// projection needs no extra cap (the merge keeps a non-prefix
		// subset, so a tighter cap could drop surviving records).
		s.project(c, &a, includeRecords, 0)
		return ctx.Err()
	})
	return a, err
}

// project resolves the answer's ids to record copies while still
// holding the deployment slot (the id index builds lazily under it).
// max bounds how many ids are projected (0 = all): union-merged
// answers truncate to a prefix in shard order, so a shard can never
// contribute more than the limit — projecting beyond it would copy
// records the merge is guaranteed to drop.
func (s *Shard) project(c *cluster.Cluster, a *answer, includeRecords bool, max int) {
	if !includeRecords {
		return
	}
	ids := a.ids
	if max > 0 && len(ids) > max {
		ids = ids[:max]
	}
	a.recs = make(map[uint64]metadata.File, len(ids))
	for _, id := range ids {
		if f, ok := c.FileByID(id); ok {
			a.recs[id] = *f
		}
	}
}

// fileByID returns a copy of the stored file with the given id.
func (s *Shard) fileByID(id uint64) (metadata.File, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out metadata.File
	ok := false
	// The id index may be lazily built here — cluster-state mutation
	// needing the same serialization as queries.
	_ = s.runQueryCtx(context.Background(), s.primary, func() error {
		if f, found := s.primary.FileByID(id); found {
			out = *f
			ok = true
		}
		return nil
	})
	return out, ok
}

// noWait is the durability wait of a shard without a WAL.
var noWait = func() error { return nil }

// stageRecord stamps rec with the epoch it will commit at (the current
// epoch plus one) and stages it on the shard's WAL, returning the
// group-commit wait — a no-op wait without a WAL. Staging failures are
// returned immediately (with a nil wait) and reject the mutation, just
// as the old synchronous append did; only the fsync acknowledgement
// moves into the wait, which the caller runs after releasing the shard
// write lock so same-shard writers overlap their fsyncs. The caller
// must hold the shard's write lock while staging, so the stamped epoch
// cannot move before the record lands, and MUST call a returned
// non-nil wait on every path (leaking it hangs Log.Close).
func (s *Shard) stageRecord(rec wal.Record) (func() error, error) {
	if s.log == nil {
		return noWait, nil
	}
	rec.Epoch = s.epoch.Load() + 1
	wait, err := s.log.AppendAsync(&rec)
	if err != nil {
		return nil, fmt.Errorf("engine: shard %d: %w", s.id, err)
	}
	return func() error {
		if err := wait(); err != nil {
			return fmt.Errorf("engine: shard %d: %w", s.id, err)
		}
		return nil
	}, nil
}

// stageThen is the shard's durable mutation path: stage the record on
// the WAL, then apply the mutation, then bump the epoch if apply
// reports an effectual change, returning the durability wait for the
// caller to run after dropping the shard lock. The stage-before-apply
// order means a crash at any point loses nothing acknowledged: either
// the record reaches disk (replayed on recovery) or the mutation's
// wait never returned nil — a failed fsync after apply leaves the
// mutation visible but unacknowledged, with the log sticky-broken so
// nothing later is acknowledged either (DESIGN.md §7). A staging
// failure rejects the mutation without applying it — the log rolls
// back to the previous frame boundary. The caller must hold the
// shard's write lock.
func (s *Shard) stageThen(rec wal.Record, apply func() bool) (func() error, error) {
	wait, err := s.stageRecord(rec)
	if err != nil {
		return nil, err
	}
	if apply() {
		s.epoch.Add(1)
	}
	return wait, nil
}

// insertFilesLocked inserts files into every deployed tree, summing the
// primary deployment's accounting across the sub-batch. The caller must
// hold the shard's write lock.
func (s *Shard) insertFilesLocked(files []*metadata.File) cluster.Result {
	var total cluster.Result
	for _, f := range files {
		for _, c := range s.clusters {
			res := c.InsertFile(f)
			if c == s.primary {
				total.Latency += res.Latency
				total.Messages += res.Messages
				total.Hops += res.Hops
				total.UnitsSearched += res.UnitsSearched
				total.RecordsScanned += res.RecordsScanned
				total.VersionChecked += res.VersionChecked
				total.VersionLatency += res.VersionLatency
			}
		}
	}
	return total
}

// deleteLocked removes a file by id from every deployed tree. The
// caller must hold the shard's write lock.
func (s *Shard) deleteLocked(id uint64) (cluster.Result, bool) {
	var rep cluster.Result
	found := false
	for _, c := range s.clusters {
		res, ok := c.DeleteFile(id)
		if c == s.primary {
			rep = res
			found = ok
		}
	}
	return rep, found
}

// modifyLocked updates a file's attributes in every deployed tree. The
// caller must hold the shard's write lock.
func (s *Shard) modifyLocked(f *metadata.File) (cluster.Result, bool) {
	var rep cluster.Result
	found := false
	for _, c := range s.clusters {
		res, ok := c.ModifyFile(f)
		if c == s.primary {
			rep = res
			found = ok
		}
	}
	return rep, found
}

// flush propagates all pending changes on this shard, reporting whether
// anything was pending (the condition for an epoch bump). An effectual
// flush is logged (OpFlush, body-free) before propagating, so a
// recovered shard replays the same epoch trajectory and replica-state
// evolution the pre-crash shard went through; a no-op flush logs
// nothing and bumps nothing.
func (s *Shard) flush() (bool, error) {
	s.mu.Lock()
	changed := false
	for _, c := range s.clusters {
		for _, g := range c.Tree.FirstLevelIndexUnits() {
			if c.PendingCount(g) > 0 {
				changed = true
				break
			}
		}
		if changed {
			break
		}
	}
	wait := noWait
	if changed {
		var err error
		wait, err = s.stageRecord(wal.Record{Op: wal.OpFlush})
		if err != nil {
			s.mu.Unlock()
			return false, err
		}
	}
	for _, c := range s.clusters {
		c.PropagateAll()
	}
	if changed {
		s.epoch.Add(1)
	}
	s.mu.Unlock()
	if err := wait(); err != nil {
		return false, err
	}
	return changed, nil
}

// ShardStats summarizes one shard's structure for the serving layer.
type ShardStats struct {
	Shard             int
	Units             int
	IndexUnits        int
	TreeHeight        int
	Files             int
	Trees             int
	IndexBytesTotal   int
	IndexBytesPerNode int
	Epoch             uint64
}

// stats snapshots the shard's structural statistics under its read
// lock.
func (s *Shard) stats() ShardStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	storage, index := s.primary.Tree.CountNodes()
	st := ShardStats{
		Shard:      s.id,
		Units:      storage,
		IndexUnits: index,
		TreeHeight: s.primary.Tree.Height(),
		Files:      s.primary.Tree.TotalFiles(),
		Trees:      len(s.clusters),
		Epoch:      s.epoch.Load(),
	}
	for _, c := range s.clusters {
		st.IndexBytesTotal += c.Tree.SizeBytes()
	}
	st.IndexBytesPerNode = s.primary.IndexSizeBytes()
	return st
}
