package lsi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceCorrelationIdentity(t *testing.T) {
	v := []float64{1, 2, 3}
	if got := DistanceCorrelation(v, v); got != 1 {
		t.Fatalf("identical vectors correlation = %v, want 1", got)
	}
}

func TestDistanceCorrelationDecays(t *testing.T) {
	a := []float64{0, 0}
	near := []float64{0.1, 0}
	far := []float64{5, 0}
	cn := DistanceCorrelation(a, near)
	cf := DistanceCorrelation(a, far)
	if !(cn > cf) {
		t.Fatalf("correlation must decay with distance: near %v, far %v", cn, cf)
	}
	if want := math.Exp(-0.1); math.Abs(cn-want) > 1e-12 {
		t.Fatalf("near correlation = %v, want %v", cn, want)
	}
}

func TestDistanceCorrelationShortVector(t *testing.T) {
	// Length mismatch compares the common prefix.
	a := []float64{1, 2, 3}
	b := []float64{1, 2}
	if got := DistanceCorrelation(a, b); got != 1 {
		t.Fatalf("prefix-equal vectors correlation = %v, want 1", got)
	}
}

func TestPropertyDistanceCorrelationBounds(t *testing.T) {
	f := func(a, b []float64) bool {
		c := DistanceCorrelation(a, b)
		if math.IsNaN(c) {
			return false
		}
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDistanceCorrelationSymmetric(t *testing.T) {
	f := func(a, b [4]float64) bool {
		return DistanceCorrelation(a[:], b[:]) == DistanceCorrelation(b[:], a[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseDistanceCorrelations(t *testing.T) {
	vecs := [][]float64{
		{0.1, 0.1}, {0.12, 0.1}, // close pair
		{0.9, 0.95}, // far from both
	}
	m, err := Fit(vecs, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := m.PairwiseDistanceCorrelations()
	if d.Rows() != 3 || d.Cols() != 3 {
		t.Fatalf("dims = %dx%d", d.Rows(), d.Cols())
	}
	for i := 0; i < 3; i++ {
		if d.At(i, i) != 1 {
			t.Fatalf("diagonal (%d,%d) = %v", i, i, d.At(i, i))
		}
		for j := 0; j < 3; j++ {
			if d.At(i, j) != d.At(j, i) {
				t.Fatal("not symmetric")
			}
		}
	}
	if !(d.At(0, 1) > d.At(0, 2)) {
		t.Fatalf("close pair correlation %v not above far pair %v", d.At(0, 1), d.At(0, 2))
	}
}
