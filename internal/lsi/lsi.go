// Package lsi implements the Latent Semantic Indexing tool SmartStore
// uses to measure semantic correlation between file metadata (paper
// §3.1.1).
//
// An attribute–item matrix A (t attributes × n items) is decomposed with
// the SVD, A = U Σ Vᵀ, and truncated to its p largest singular values,
// Ap = Up Σp Vpᵀ. Each item is then represented by its p-dimensional
// coordinates (a row of Vp Σp), and an external query vector q ∈ Rᵗ is
// folded into the same space as q̂ = Σp⁻¹ Upᵀ q. Correlation between
// vectors in the semantic space is their normalized inner product.
package lsi

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/matrix"
)

// parallelThreshold is the item count above which pairwise matrices are
// computed with a worker per core. Below it, goroutine overhead exceeds
// the arithmetic.
const parallelThreshold = 64

// forEachRow runs fn(i) for i in [0, n), fanning out across cores when
// n is large. Work is index-addressed, so the result is identical to
// the sequential loop.
func forEachRow(n int, fn func(i int)) {
	if n < parallelThreshold {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Model is a fitted LSI model over n items with t attributes, truncated
// to rank p.
type Model struct {
	t, n, p int
	up      *matrix.Dense // t×p
	sigma   []float64     // p singular values (descending)
	items   *matrix.Dense // n×p: row i = item i's semantic coordinates (Vp Σp)
}

// DefaultRank picks the truncation rank for a t×n matrix: enough to keep
// most variance while projecting into a genuinely lower-dimensional
// subspace. The paper leaves p unspecified; min(t, n, 4) reflects that
// metadata attribute spaces have low intrinsic dimensionality.
func DefaultRank(t, n int) int {
	p := 4
	if t < p {
		p = t
	}
	if n < p {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Fit builds an LSI model from item vectors: vectors[i] is item i's
// t-dimensional attribute vector. rank ≤ 0 selects DefaultRank. Fit
// returns an error when the inputs are empty or ragged.
func Fit(vectors [][]float64, rank int) (*Model, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("lsi: no items")
	}
	t := len(vectors[0])
	if t == 0 {
		return nil, fmt.Errorf("lsi: zero-dimensional items")
	}
	for i, v := range vectors {
		if len(v) != t {
			return nil, fmt.Errorf("lsi: item %d has %d dims, want %d", i, len(v), t)
		}
	}
	if rank <= 0 {
		rank = DefaultRank(t, n)
	}

	// A is t×n with items as columns.
	a := matrix.NewDense(t, n)
	for j, v := range vectors {
		for i, x := range v {
			a.Set(i, j, x)
		}
	}
	svd, err := matrix.ComputeSVD(a)
	if err != nil && err != matrix.ErrNoConvergence {
		return nil, err
	}
	svd = svd.Truncate(rank)
	p := len(svd.Sigma)

	// Item coordinates: rows of Vp scaled by Σp.
	items := matrix.NewDense(n, p)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			items.Set(i, j, svd.V.At(i, j)*svd.Sigma[j])
		}
	}
	return &Model{t: t, n: n, p: p, up: svd.U, sigma: svd.Sigma, items: items}, nil
}

// Rank returns the truncation rank p actually used.
func (m *Model) Rank() int { return m.p }

// Items returns the number of items the model was fitted on.
func (m *Model) Items() int { return m.n }

// AttrDims returns the attribute dimensionality t.
func (m *Model) AttrDims() int { return m.t }

// ItemVector returns item i's p-dimensional semantic coordinates.
func (m *Model) ItemVector(i int) []float64 {
	return m.items.Row(i)
}

// FoldIn projects a t-dimensional query vector into the semantic
// subspace: q̂ = Σp⁻¹ Upᵀ q, with zero singular values contributing zero
// coordinates. The result is then comparable (after the Σ scaling
// below) with item vectors.
func (m *Model) FoldIn(q []float64) []float64 {
	if len(q) != m.t {
		panic(fmt.Sprintf("lsi: query dims %d != model dims %d", len(q), m.t))
	}
	// Upᵀ q
	proj := make([]float64, m.p)
	for j := 0; j < m.p; j++ {
		var s float64
		for i := 0; i < m.t; i++ {
			s += m.up.At(i, j) * q[i]
		}
		proj[j] = s
	}
	// Σp⁻¹ scaling, then re-scale by Σp to land in item-coordinate space.
	// The two cancel except for zero singular values, which are dropped:
	// q̂_j = (Upᵀ q)_j when σ_j > 0, else 0. We keep the explicit form to
	// mirror the paper's definition and guard σ=0.
	for j := 0; j < m.p; j++ {
		if m.sigma[j] == 0 {
			proj[j] = 0
		}
	}
	return proj
}

// Similarity returns the cosine similarity (normalized inner product,
// §3.1.1) between two semantic-space vectors, mapped from [-1,1] to
// [0,1] so it can serve directly as the admission-threshold correlation
// value ε ∈ [0,1] of §3.1.1.
func Similarity(a, b []float64) float64 {
	c := matrix.Cosine(a, b)
	return (c + 1) / 2
}

// DistanceCorrelation maps the Euclidean distance between two
// semantic-space vectors to a correlation value in [0, 1]:
// exp(−‖a−b‖). It is the smooth counterpart of the §1.1 semantic
// correlation measure (which is defined through Euclidean distance to
// group centroids): identical vectors score 1, and the score decays
// continuously with distance. Grouping admission thresholds compare
// against this value, which — unlike cosine in a rank-2 subspace —
// spreads over the whole unit interval.
func DistanceCorrelation(a, b []float64) float64 {
	var s float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-math.Sqrt(s))
}

// QueryItemSimilarity folds q into the model's space and returns its
// similarity to item i.
func (m *Model) QueryItemSimilarity(q []float64, i int) float64 {
	return Similarity(m.FoldIn(q), m.ItemVector(i))
}

// PairwiseSimilarities returns the full n×n item-similarity matrix.
// Cell (i,j) is the semantic correlation value between items i and j
// used by the grouping algorithm of §3.1.2. Rows are computed in
// parallel across cores for large n; the result is deterministic.
func (m *Model) PairwiseSimilarities() *matrix.Dense {
	out := matrix.NewDense(m.n, m.n)
	rows := make([][]float64, m.n)
	for i := 0; i < m.n; i++ {
		rows[i] = m.items.Row(i)
	}
	forEachRow(m.n, func(i int) {
		out.Set(i, i, 1)
		for j := i + 1; j < m.n; j++ {
			out.Set(i, j, Similarity(rows[i], rows[j]))
		}
	})
	// Mirror the upper triangle (single-writer-per-cell above keeps the
	// parallel phase race-free).
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			out.Set(j, i, out.At(i, j))
		}
	}
	return out
}

// PairwiseDistanceCorrelations returns the n×n matrix of
// DistanceCorrelation values between item coordinates — the correlation
// values the semantic grouping algorithm thresholds (§3.1.2). Rows are
// computed in parallel across cores for large n; the result is
// deterministic.
func (m *Model) PairwiseDistanceCorrelations() *matrix.Dense {
	out := matrix.NewDense(m.n, m.n)
	rows := make([][]float64, m.n)
	for i := 0; i < m.n; i++ {
		rows[i] = m.items.Row(i)
	}
	forEachRow(m.n, func(i int) {
		out.Set(i, i, 1)
		for j := i + 1; j < m.n; j++ {
			out.Set(i, j, DistanceCorrelation(rows[i], rows[j]))
		}
	})
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			out.Set(j, i, out.At(i, j))
		}
	}
	return out
}

// MostSimilarItem returns the index of the fitted item most similar to
// the folded-in query, and the similarity value. It is the off-line
// pre-processing primitive of §3.4: "use the LSI tool over the request
// vector and semantic vectors of existing index units to check which
// index unit is the most closely correlated with the request".
func (m *Model) MostSimilarItem(q []float64) (int, float64) {
	qv := m.FoldIn(q)
	best, bestSim := 0, -1.0
	for i := 0; i < m.n; i++ {
		if s := Similarity(qv, m.ItemVector(i)); s > bestSim {
			best, bestSim = i, s
		}
	}
	return best, bestSim
}
