package lsi

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 2); err == nil {
		t.Fatal("Fit(nil) should error")
	}
	if _, err := Fit([][]float64{{}}, 2); err == nil {
		t.Fatal("Fit with empty vectors should error")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, 2); err == nil {
		t.Fatal("Fit with ragged vectors should error")
	}
}

func TestDefaultRank(t *testing.T) {
	cases := []struct{ t, n, want int }{
		{10, 10, 4}, {2, 10, 2}, {10, 3, 3}, {0, 0, 1},
	}
	for _, c := range cases {
		if got := DefaultRank(c.t, c.n); got != c.want {
			t.Errorf("DefaultRank(%d,%d) = %d, want %d", c.t, c.n, got, c.want)
		}
	}
}

func TestModelDims(t *testing.T) {
	vecs := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}}
	m, err := Fit(vecs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Items() != 4 || m.AttrDims() != 3 || m.Rank() != 2 {
		t.Fatalf("dims = %d/%d/%d", m.Items(), m.AttrDims(), m.Rank())
	}
	if len(m.ItemVector(0)) != 2 {
		t.Fatalf("item vector len = %d, want 2", len(m.ItemVector(0)))
	}
}

func TestSimilarityRange(t *testing.T) {
	if s := Similarity([]float64{1, 0}, []float64{1, 0}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("identical similarity = %v, want 1", s)
	}
	if s := Similarity([]float64{1, 0}, []float64{-1, 0}); math.Abs(s) > 1e-12 {
		t.Fatalf("opposite similarity = %v, want 0", s)
	}
	if s := Similarity([]float64{1, 0}, []float64{0, 1}); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("orthogonal similarity = %v, want 0.5", s)
	}
}

func TestCorrelatedItemsScoreHigher(t *testing.T) {
	// Two clusters in attribute space: small-old files and big-new files.
	vecs := [][]float64{
		{0.1, 0.1, 0.2}, {0.12, 0.15, 0.18}, {0.09, 0.12, 0.22}, // cluster A
		{0.9, 0.95, 0.85}, {0.88, 0.9, 0.92}, {0.93, 0.87, 0.9}, // cluster B
	}
	m, err := Fit(vecs, 2)
	if err != nil {
		t.Fatal(err)
	}
	sims := m.PairwiseSimilarities()
	within := sims.At(0, 1)
	across := sims.At(0, 3)
	if within <= across {
		t.Fatalf("within-cluster sim %v not greater than across %v", within, across)
	}
}

func TestPairwiseSimilaritiesSymmetricUnitDiagonal(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	vecs := make([][]float64, 10)
	for i := range vecs {
		vecs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	m, err := Fit(vecs, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := m.PairwiseSimilarities()
	for i := 0; i < 10; i++ {
		if s.At(i, i) != 1 {
			t.Fatalf("diagonal (%d,%d) = %v, want 1", i, i, s.At(i, i))
		}
		for j := 0; j < 10; j++ {
			if s.At(i, j) != s.At(j, i) {
				t.Fatalf("similarity not symmetric at (%d,%d)", i, j)
			}
			if s.At(i, j) < 0 || s.At(i, j) > 1+1e-12 {
				t.Fatalf("similarity out of [0,1]: %v", s.At(i, j))
			}
		}
	}
}

func TestFoldInFindsNearestCluster(t *testing.T) {
	vecs := [][]float64{
		{0.1, 0.1, 0.2}, {0.12, 0.15, 0.18},
		{0.9, 0.95, 0.85}, {0.88, 0.9, 0.92},
	}
	m, err := Fit(vecs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A query near cluster B should pick a B item.
	idx, sim := m.MostSimilarItem([]float64{0.91, 0.9, 0.89})
	if idx != 2 && idx != 3 {
		t.Fatalf("MostSimilarItem = %d (sim %v), want 2 or 3", idx, sim)
	}
	// A query near cluster A should pick an A item.
	idx, _ = m.MostSimilarItem([]float64{0.1, 0.13, 0.2})
	if idx != 0 && idx != 1 {
		t.Fatalf("MostSimilarItem = %d, want 0 or 1", idx)
	}
}

func TestFoldInPanicsOnWrongDims(t *testing.T) {
	m, err := Fit([][]float64{{1, 2}, {3, 4}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("FoldIn with wrong dims did not panic")
		}
	}()
	m.FoldIn([]float64{1, 2, 3})
}

func TestQueryItemSimilarity(t *testing.T) {
	vecs := [][]float64{{1, 0}, {0, 1}}
	m, err := Fit(vecs, 2)
	if err != nil {
		t.Fatal(err)
	}
	s0 := m.QueryItemSimilarity([]float64{1, 0}, 0)
	s1 := m.QueryItemSimilarity([]float64{1, 0}, 1)
	if s0 <= s1 {
		t.Fatalf("query [1,0]: sim to item0 %v should exceed sim to item1 %v", s0, s1)
	}
}

func TestRankClampedToAvailable(t *testing.T) {
	vecs := [][]float64{{1, 2, 3}, {4, 5, 6}} // n=2 → rank ≤ 2
	m, err := Fit(vecs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rank() > 2 {
		t.Fatalf("Rank = %d, want ≤ 2", m.Rank())
	}
}

// Property: similarity is symmetric and bounded for random fitted models.
func TestPropertySimilarityBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed|1))
		n := 3 + int(rng.Uint64()%8)
		d := 2 + int(rng.Uint64()%5)
		vecs := make([][]float64, n)
		for i := range vecs {
			vecs[i] = make([]float64, d)
			for j := range vecs[i] {
				vecs[i][j] = rng.Float64()
			}
		}
		m, err := Fit(vecs, 0)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := Similarity(m.ItemVector(i), m.ItemVector(j))
				if s < -1e-9 || s > 1+1e-9 {
					return false
				}
				if math.Abs(s-Similarity(m.ItemVector(j), m.ItemVector(i))) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFit60Items(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	vecs := make([][]float64, 60)
	for i := range vecs {
		vecs[i] = make([]float64, 7)
		for j := range vecs[i] {
			vecs[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(vecs, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFoldIn(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	vecs := make([][]float64, 60)
	for i := range vecs {
		vecs[i] = make([]float64, 7)
		for j := range vecs[i] {
			vecs[i][j] = rng.Float64()
		}
	}
	m, err := Fit(vecs, 4)
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FoldIn(q)
	}
}
