package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/metadata"
)

// Op identifies a record's mutation kind.
type Op uint8

const (
	// OpInsert is an insert batch (a single insert is a batch of one).
	OpInsert Op = 1
	// OpDelete removes one file by id.
	OpDelete Op = 2
	// OpModify replaces one file's attribute vector.
	OpModify Op = 3
	// OpFlush records an effectual replica propagation — it carries no
	// body, only the epoch bump, so a recovered shard resumes the exact
	// pre-crash epoch trajectory and replica state.
	OpFlush Op = 4
)

// String returns the op's short name.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpModify:
		return "modify"
	case OpFlush:
		return "flush"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one logged mutation. Epoch is the shard's mutation epoch
// after applying the record — the value a snapshot persists as the
// shard's truncation point, so recovery replays exactly the records
// beyond the snapshot. BatchID is nonzero when the record is one
// shard's slice of a multi-shard insert batch; Targets then lists every
// shard the batch spans, and recovery applies the batch only when all
// of them logged it (otherwise the batch was never acknowledged and is
// dropped atomically).
type Record struct {
	Op      Op
	Epoch   uint64
	BatchID uint64
	Targets []int
	// Files carries the insert batch's records (OpInsert) or the single
	// replacement record (OpModify).
	Files []metadata.File
	// ID is the deleted file id (OpDelete).
	ID uint64
}

// Payload layout (all integers little-endian; documented byte-for-byte
// in DESIGN.md §7):
//
//	[1]  op
//	[8]  epoch
//	[8]  batch id
//	op=insert: [2] target count, [4]×n target shard ids,
//	           [4] file count, then files
//	op=delete: [8] file id
//	op=modify: one file
//	op=flush:  no body
//
//	file: [8] id, [4] sub-trace (int32), [2] path length, path bytes,
//	      [7×8] attribute values (IEEE-754 bits)
const (
	payloadFixedSize = 1 + 8 + 8
	fileFixedSize    = 8 + 4 + 2 + 8*int(metadata.NumAttrs)
	maxPathLen       = math.MaxUint16
	maxTargets       = math.MaxUint16
)

// encodePayload serializes a record into the on-disk payload.
func encodePayload(rec *Record) ([]byte, error) {
	size := payloadFixedSize
	switch rec.Op {
	case OpInsert:
		if len(rec.Targets) > maxTargets {
			return nil, fmt.Errorf("wal: %d batch targets exceed the format's limit", len(rec.Targets))
		}
		size += 2 + 4*len(rec.Targets) + 4
		for i := range rec.Files {
			if len(rec.Files[i].Path) > maxPathLen {
				return nil, fmt.Errorf("wal: path of file %d exceeds %d bytes", rec.Files[i].ID, maxPathLen)
			}
			size += fileFixedSize + len(rec.Files[i].Path)
		}
	case OpDelete:
		size += 8
	case OpFlush:
		// header only
	case OpModify:
		if len(rec.Files) != 1 {
			return nil, fmt.Errorf("wal: modify record carries %d files, want 1", len(rec.Files))
		}
		if len(rec.Files[0].Path) > maxPathLen {
			return nil, fmt.Errorf("wal: path of file %d exceeds %d bytes", rec.Files[0].ID, maxPathLen)
		}
		size += fileFixedSize + len(rec.Files[0].Path)
	default:
		return nil, fmt.Errorf("wal: unknown op %d", rec.Op)
	}

	buf := make([]byte, 0, size)
	buf = append(buf, byte(rec.Op))
	buf = binary.LittleEndian.AppendUint64(buf, rec.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, rec.BatchID)
	switch rec.Op {
	case OpInsert:
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Targets)))
		for _, t := range rec.Targets {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Files)))
		for i := range rec.Files {
			buf = appendFile(buf, &rec.Files[i])
		}
	case OpDelete:
		buf = binary.LittleEndian.AppendUint64(buf, rec.ID)
	case OpModify:
		buf = appendFile(buf, &rec.Files[0])
	case OpFlush:
	}
	return buf, nil
}

func appendFile(buf []byte, f *metadata.File) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, f.ID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(f.SubTrace)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Path)))
	buf = append(buf, f.Path...)
	for a := 0; a < int(metadata.NumAttrs); a++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f.Attrs[a]))
	}
	return buf
}

// decoder tracks a cursor over a payload; every read is bounds-checked
// so arbitrary (fuzzed, corrupted) bytes decode to an error, never a
// panic.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("wal: payload truncated at byte %d", d.off)
		return false
	}
	return true
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str(n int) string {
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) file() metadata.File {
	var f metadata.File
	f.ID = d.u64()
	f.SubTrace = int(int32(d.u32()))
	f.Path = d.str(int(d.u16()))
	for a := 0; a < int(metadata.NumAttrs); a++ {
		f.Attrs[a] = math.Float64frombits(d.u64())
	}
	return f
}

// decodePayload parses one record payload, rejecting malformed input
// (bad op, truncation, trailing bytes) with an error.
func decodePayload(buf []byte) (Record, error) {
	d := &decoder{buf: buf}
	var rec Record
	if !d.need(1) {
		return Record{}, d.err
	}
	rec.Op = Op(d.buf[0])
	d.off = 1
	rec.Epoch = d.u64()
	rec.BatchID = d.u64()
	switch rec.Op {
	case OpInsert:
		nt := int(d.u16())
		if d.err == nil && nt > 0 {
			rec.Targets = make([]int, nt)
			for i := 0; i < nt; i++ {
				rec.Targets[i] = int(d.u32())
			}
		}
		nf := d.u32()
		if d.err != nil {
			return Record{}, d.err
		}
		// Bound the allocation by what the payload can actually hold.
		if int(nf) > len(buf)/fileFixedSize+1 {
			return Record{}, fmt.Errorf("wal: file count %d exceeds payload", nf)
		}
		rec.Files = make([]metadata.File, 0, nf)
		for i := 0; i < int(nf); i++ {
			rec.Files = append(rec.Files, d.file())
		}
	case OpDelete:
		rec.ID = d.u64()
	case OpModify:
		rec.Files = []metadata.File{d.file()}
	case OpFlush:
	default:
		return Record{}, fmt.Errorf("wal: unknown op %d", rec.Op)
	}
	if d.err != nil {
		return Record{}, d.err
	}
	if d.off != len(buf) {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after record", len(buf)-d.off)
	}
	return rec, nil
}
