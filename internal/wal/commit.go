package wal

import (
	"errors"
	"fmt"
	"runtime"
)

// Group commit for the SyncAlways policy: instead of every appender
// paying its own fsync, appenders write their frame under the log
// mutex, enqueue onto the commit channel, and block until the committer
// goroutine's next fsync covers their record. The committer drains the
// queue into a batch and issues ONE fsync for all of it — every batched
// frame was written before its writer enqueued, so a single sync of the
// active segment (sealed predecessors were fsynced when sealed) covers
// the whole batch. A lone appender still gets one-fsync-per-op latency:
// its enqueue wakes the committer immediately and the batch is just it.
//
// Ordering guarantee: Append returns nil only after an fsync that
// covers the record — exactly the acknowledgement contract the
// ungrouped SyncAlways path had. A failed group fsync fails every
// waiter in the batch, rolls the active segment back to the durable
// watermark (those frames were never acknowledged and must not replay),
// and marks the log sticky-broken: after a failed fsync the kernel may
// have dropped the dirty pages, so the on-disk state is unknowable and
// refusing further appends is the honest failure.

// errClosed rejects appends racing Close.
var errClosed = errors.New("wal: log closed")

// commitReq is one appender waiting for the fsync that covers its
// record.
type commitReq struct {
	done chan error
}

// startCommitter launches the group-commit goroutine. Called once from
// Open when the policy is SyncAlways (and grouping is not disabled).
func (l *Log) startCommitter() {
	l.commitCh = make(chan commitReq, 128)
	l.stopCh = make(chan struct{})
	l.committerDone = make(chan struct{})
	go l.committer()
}

// committer is the per-shard commit loop: wait for one request, drain
// whatever else queued meanwhile, fsync once, release the batch.
func (l *Log) committer() {
	defer close(l.committerDone)
	for {
		var first commitReq
		select {
		case first = <-l.commitCh:
		case <-l.stopCh:
			l.failPending()
			return
		}
		// Batch formation: yield once so appenders made runnable by the
		// previous batch's release get to write and enqueue before this
		// batch is sealed — without it, a committer on few cores laps
		// the writers and degenerates to one fsync per record. A lone
		// appender pays one scheduler yield, nanoseconds against the
		// fsync it is about to wait for.
		runtime.Gosched()
		batch := append(make([]commitReq, 0, 8), first)
	drain:
		for {
			select {
			case r := <-l.commitCh:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		err := l.commitBatch(len(batch))
		for _, r := range batch {
			r.done <- err
		}
	}
}

// commitBatch makes every frame written before the batch was collected
// durable with one fsync of the active segment. Frames in sealed
// segments are already durable (sealing fsyncs under SyncAlways), so
// syncing the newest segment suffices regardless of rotations that
// happened while the batch accumulated.
func (l *Log) commitBatch(n int) error {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	seg := l.active
	covered := seg.size
	l.mu.Unlock()

	if h := l.commitSyncHook; h != nil {
		// Test-only: widen the commit window so batching is observable
		// on storage where fsync outpaces the appenders.
		h()
	}
	if err := l.syncFile(seg.f); err != nil {
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.err != nil {
			return l.err
		}
		if seg != l.active {
			// The segment was sealed (and therefore successfully fsynced
			// and closed) between collecting the batch and syncing it —
			// the error is the closed handle, not a failed flush, and
			// every batched frame is already durable.
			l.groupCommits.Add(1)
			l.groupedRecords.Add(uint64(n))
			l.observeGroupCommit(n)
			return nil
		}
		// Genuine fsync failure: roll the segment back to the durable
		// watermark so the unacknowledged frames cannot replay, and go
		// sticky-broken — the page-cache state after a failed fsync is
		// unknowable.
		if terr := seg.f.Truncate(seg.acked); terr != nil {
			l.err = fmt.Errorf("wal: %s broken: group fsync failed (%v) and rollback failed (%v)",
				seg.path, err, terr)
		} else {
			seg.size = seg.acked
			l.updateLiveLocked()
			l.err = fmt.Errorf("wal: %s broken: group fsync failed: %v", seg.path, err)
		}
		return l.err
	}

	l.mu.Lock()
	if seg == l.active && covered > seg.acked {
		seg.acked = covered
	}
	l.mu.Unlock()
	l.groupCommits.Add(1)
	l.groupedRecords.Add(uint64(n))
	l.observeGroupCommit(n)
	return nil
}

// failPending rejects every request still queued when the committer
// stops; their frames are discarded with the close-time state.
func (l *Log) failPending() {
	for {
		select {
		case r := <-l.commitCh:
			r.done <- errClosed
		default:
			return
		}
	}
}

// awaitCommit enqueues the calling appender and blocks until the
// committer's covering fsync completes. The caller is registered in the
// appenders wait group (see Append), and Close stops the committer only
// after every registered appender has drained — so the send cannot race
// the shutdown and the reply channel is always served.
func (l *Log) awaitCommit() error {
	req := commitReq{done: make(chan error, 1)}
	l.commitCh <- req
	return <-req.done
}
