package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A shard's log is a directory of fixed-capacity segment files with a
// monotonic sequence number. Exactly one segment — the one with the
// highest sequence — is active (appends land there); every earlier
// segment is sealed: closed, immutable, and — under SyncAlways and
// SyncInterval — fully fsynced before the next segment was created.
// That seal-before-create ordering is the invariant recovery leans on:
// a crash can tear only the newest segment's tail, so a scan that stops
// at damage in an older segment is discarding bytes that were provably
// never acknowledged.
//
// Segment file layout: a 20-byte header — magic "SSWAL\0\0" plus the
// format version byte '2' (8 bytes), the owning shard index (uint32 LE)
// and the segment sequence number (uint64 LE) — followed by the same
// length-prefixed CRC-32C frames as before (see codec.go):
//
//	[4 bytes payload length, LE] [4 bytes CRC-32C of payload, LE] [payload]

const (
	// segMagic opens every segment file. The trailing '2' is the format
	// version: the single-file v1 layout ("...1") is rejected with a
	// distinct error, never misread.
	segMagic = "SSWAL\x00\x002"
	// SegmentHeaderSize is a segment header's size — magic (8) + shard
	// index (uint32) + sequence (uint64) — and therefore the on-disk
	// footprint of an empty segment. Exported so tests outside the
	// package can assert on header-only segments without hardcoding the
	// format.
	SegmentHeaderSize = len(segMagic) + 4 + 8
	// segHeaderSize is the package-internal alias.
	segHeaderSize = SegmentHeaderSize
	// frameHeaderSize is the payload length plus CRC-32C prefix.
	frameHeaderSize = 8
	// maxRecordSize bounds a single payload so a corrupt length prefix
	// cannot drive an arbitrary allocation.
	maxRecordSize = 64 << 20
	// DefaultSegmentBytes is the rotation capacity when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 1 << 20
)

// castagnoli is the CRC-32C table shared by framing and recovery.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segment is the log's one mutable segment file: the append target.
type segment struct {
	f    *os.File
	path string
	seq  uint64
	// size is the end of the valid prefix — the append offset.
	size int64
	// acked is the durable watermark: every frame below it has been
	// covered by a successful fsync (group commit advances it; sealing
	// raises it to size). It is the rollback target when a group fsync
	// fails — frames beyond it were never acknowledged.
	acked int64
}

// sealedSegment is an immutable, closed predecessor of the active
// segment, retained until a checkpoint's deferred truncation deletes
// it.
type sealedSegment struct {
	path string
	seq  uint64
	size int64
}

func segmentFileName(seq uint64) string {
	return fmt.Sprintf("seg-%016d.seg", seq)
}

// parseSegmentFileName extracts the sequence from a segment file name,
// reporting false for anything that is not one.
func parseSegmentFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".seg")
	if len(digits) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// encodeSegmentHeader frames a segment header for the given shard and
// sequence.
func encodeSegmentHeader(shard int, seq uint64) []byte {
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[len(segMagic):], uint32(shard))
	binary.LittleEndian.PutUint64(hdr[len(segMagic)+4:], seq)
	return hdr
}

// decodeSegmentHeader parses and validates a segment header against the
// expected shard and sequence.
func decodeSegmentHeader(hdr []byte, shard int, seq uint64) error {
	if string(hdr[:len(segMagic)]) != segMagic {
		if string(hdr[:len(segMagic)-1]) == segMagic[:len(segMagic)-1] {
			return fmt.Errorf("wal: format version %q (want %q — not a v2 segment)",
				hdr[len(segMagic)-1], segMagic[len(segMagic)-1])
		}
		return fmt.Errorf("wal: bad magic (not a WAL segment)")
	}
	if got := int(binary.LittleEndian.Uint32(hdr[len(segMagic):])); got != shard {
		return fmt.Errorf("wal: segment belongs to shard %d, want %d", got, shard)
	}
	if got := binary.LittleEndian.Uint64(hdr[len(segMagic)+4:]); got != seq {
		return fmt.Errorf("wal: segment header sequence %d disagrees with file name (%d)", got, seq)
	}
	return nil
}

// createSegment creates a fresh segment file with its header written
// (not yet fsynced — the header becomes durable with the first synced
// append; a header torn by a crash before that provably precedes any
// acknowledged record and is reinitialized on Open).
func createSegment(dir string, shard int, seq uint64) (*segment, error) {
	path := filepath.Join(dir, segmentFileName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment %s: %w", path, err)
	}
	if _, err := f.WriteAt(encodeSegmentHeader(shard, seq), 0); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("wal: write segment header %s: %w", path, err)
	}
	return &segment{f: f, path: path, seq: seq, size: int64(segHeaderSize), acked: int64(segHeaderSize)}, nil
}

// openSegment opens an existing segment file, validates its header, and
// scans its record frames. It returns the decoded records, the valid
// prefix length, and whether the scan ended before the file did (a torn
// tail). A file too short to hold a header reports torn with zero
// records — the caller reinitializes or discards it.
func openSegment(path string, shard int, seq uint64) (f *os.File, recs []Record, valid int64, torn bool, err error) {
	f, err = os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, false, fmt.Errorf("wal: open segment %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, 0, false, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	if info.Size() < int64(segHeaderSize) {
		// Torn header: the crash hit during the segment's very first
		// write, before any frame could exist.
		return f, nil, 0, true, nil
	}
	hdr := make([]byte, segHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, nil, 0, false, fmt.Errorf("wal: read header %s: %w", path, err)
	}
	if err := decodeSegmentHeader(hdr, shard, seq); err != nil {
		f.Close()
		return nil, nil, 0, false, fmt.Errorf("wal: %s: %w", path, err)
	}
	recs, valid = scanFrames(f, int64(segHeaderSize), info.Size())
	return f, recs, valid, valid < info.Size(), nil
}

// scanFrames reads frames from start until end or the first damaged
// frame, returning the decoded records and the byte offset of the valid
// prefix. A damaged frame (short header, short payload, CRC mismatch,
// undecodable payload, zero or oversized length) ends the scan without
// error: everything at and beyond it is an unacknowledged tail.
func scanFrames(r io.ReaderAt, start, end int64) ([]Record, int64) {
	var recs []Record
	off := start
	fh := make([]byte, frameHeaderSize)
	for {
		if off+frameHeaderSize > end {
			return recs, off
		}
		if _, err := r.ReadAt(fh, off); err != nil {
			return recs, off
		}
		n := binary.LittleEndian.Uint32(fh[0:4])
		sum := binary.LittleEndian.Uint32(fh[4:8])
		if n == 0 || n > maxRecordSize || off+frameHeaderSize+int64(n) > end {
			return recs, off
		}
		payload := make([]byte, n)
		if _, err := r.ReadAt(payload, off+frameHeaderSize); err != nil {
			return recs, off
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += frameHeaderSize + int64(n)
	}
}

// listSegments enumerates dir's segment files in ascending sequence
// order. Unrelated files are rejected — a foreign file inside a WAL
// directory is an operator error worth refusing over.
func listSegments(dir string) ([]sealedSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir %s: %w", dir, err)
	}
	var segs []sealedSegment
	for _, e := range entries {
		seq, ok := parseSegmentFileName(e.Name())
		if !ok {
			return nil, fmt.Errorf("wal: %s: unexpected file %q in WAL directory", dir, e.Name())
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: stat %s: %w", e.Name(), err)
		}
		segs = append(segs, sealedSegment{path: filepath.Join(dir, e.Name()), seq: seq, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}
