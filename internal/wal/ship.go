package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Segment shipping: the replication read path. A follower pulls a
// shard's log as batches of records past an epoch watermark
// (TailSince), shipped over the wire in the same length-prefixed
// CRC-32C framing the segments themselves use (EncodeTail/DecodeTail),
// so a torn or truncated ship — a leader killed mid-response — is
// detected by the follower exactly the way recovery detects a torn
// segment tail, and the pull is simply retried.
//
// The watermark is the record epoch, not a byte offset: epochs are
// stamped under the shard write lock and are non-decreasing in log
// order, so "every record with Epoch > after" is a well-defined,
// idempotent resume point that survives leader checkpoints (which
// rewrite the byte layout but preserve the epoch ordering). The one
// subtlety is that non-effectual records (a delete of an absent id)
// share the epoch stamp of the next effectual record; TailSince
// therefore never cuts a response inside an equal-epoch run — a cut
// there would strand the run's tail behind an already-advanced
// watermark.

// ShipLimitBytes is the default per-response byte budget for TailSince:
// large catch-ups stream as multiple pulls instead of one unbounded
// response.
const ShipLimitBytes = 1 << 20

// maxShipBytes bounds a shipped tail's declared payload length so a
// corrupt or hostile header cannot drive an arbitrary allocation on the
// follower.
const maxShipBytes = 256 << 20

// TailSince returns the log's records with Epoch > after, in log
// order, up to roughly maxBytes of encoded payload (0 selects
// ShipLimitBytes). caughtUp reports whether the scan reached the
// durable end of the log — false means the caller should pull again
// immediately with the advanced watermark. Under SyncAlways only the
// durable (acked) prefix of the active segment ships: a follower must
// never hold a record the leader could roll back after a failed group
// fsync. Under the other policies every appended byte is already
// acknowledged and ships.
//
// The byte budget is soft at equal-epoch boundaries: once exceeded,
// records keep shipping until the epoch strictly increases, so a
// response never ends inside an equal-epoch run (see the package note
// above).
func (l *Log) TailSince(after uint64, maxBytes int64) (recs []Record, caughtUp bool, err error) {
	if maxBytes <= 0 {
		maxBytes = ShipLimitBytes
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return nil, false, l.err
	}
	if l.closed {
		return nil, false, errClosed
	}

	var bytes int64
	lastEpoch := uint64(0)
	emit := func(rec Record, size int64) bool {
		if rec.Epoch <= after {
			return true
		}
		if bytes >= maxBytes && len(recs) > 0 && rec.Epoch > lastEpoch {
			return false // budget spent and the equal-epoch run has ended
		}
		recs = append(recs, rec)
		lastEpoch = rec.Epoch
		bytes += size
		return true
	}

	for _, s := range l.sealed {
		f, err := os.Open(s.path)
		if err != nil {
			return nil, false, fmt.Errorf("wal: ship open %s: %w", s.path, err)
		}
		done := walkFrames(f, int64(segHeaderSize), s.size, emit)
		f.Close()
		if !done {
			return recs, false, nil
		}
	}

	end := l.active.size
	if l.policy == SyncAlways {
		end = l.active.acked
	}
	if !walkFrames(l.active.f, int64(segHeaderSize), end, emit) {
		return recs, false, nil
	}
	return recs, true, nil
}

// walkFrames scans frames from start to end, invoking fn with each
// decoded record and its encoded frame size. It returns false when fn
// stopped the walk; damage or reaching end returns true (the walk
// completed as far as the valid prefix goes — damage past the durable
// watermark is an ordinary unacknowledged tail).
func walkFrames(r io.ReaderAt, start, end int64, fn func(Record, int64) bool) bool {
	off := start
	fh := make([]byte, frameHeaderSize)
	for {
		if off+frameHeaderSize > end {
			return true
		}
		if _, err := r.ReadAt(fh, off); err != nil {
			return true
		}
		n := binary.LittleEndian.Uint32(fh[0:4])
		sum := binary.LittleEndian.Uint32(fh[4:8])
		if n == 0 || n > maxRecordSize || off+frameHeaderSize+int64(n) > end {
			return true
		}
		payload := make([]byte, n)
		if _, err := r.ReadAt(payload, off+frameHeaderSize); err != nil {
			return true
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return true
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return true
		}
		if !fn(rec, frameHeaderSize+int64(n)) {
			return false
		}
		off += frameHeaderSize + int64(n)
	}
}

// TailResponse is one shipped batch of a shard's log tail.
type TailResponse struct {
	// Shard is the owning engine shard — echoed so a follower can
	// detect a misrouted response.
	Shard int
	// After echoes the request watermark.
	After uint64
	// Base is the leader's replication base for the shard: the epoch of
	// its latest durable checkpoint. A request with after < Base cannot
	// be served from the log (the covering segments were truncated) and
	// carries SnapshotRequired instead of records.
	Base uint64
	// SnapshotRequired tells the follower to re-bootstrap from a fresh
	// snapshot: the leader checkpointed past the follower's watermark.
	SnapshotRequired bool
	// CaughtUp reports that Records reach the durable end of the
	// leader's log; false means pull again immediately.
	CaughtUp bool
	// Records are the shipped records, in log order, all with
	// Epoch > After.
	Records []Record
}

// shipMagic opens every shipped tail. The trailing byte is the ship
// format version.
const shipMagic = "SSRPL\x01"

const (
	shipFlagSnapshotRequired = 1 << 0
	shipFlagCaughtUp         = 1 << 1
)

// shipHeaderSize is the fixed shipped-tail header: magic (6) + flags
// (1) + shard (u32) + after (u64) + base (u64) + record count (u32) +
// framed byte length (u32).
const shipHeaderSize = len(shipMagic) + 1 + 4 + 8 + 8 + 4 + 4

// EncodeTail writes resp to w: a fixed header followed by the records
// as the same length-prefixed CRC-32C frames the segments use. The
// declared record count and byte length let DecodeTail reject a
// truncated ship (a leader killed mid-response) instead of silently
// applying a prefix.
func EncodeTail(w io.Writer, resp *TailResponse) error {
	var frames []byte
	for i := range resp.Records {
		payload, err := encodePayload(&resp.Records[i])
		if err != nil {
			return fmt.Errorf("wal: encode shipped record: %w", err)
		}
		var fh [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(fh[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(fh[4:8], crc32.Checksum(payload, castagnoli))
		frames = append(frames, fh[:]...)
		frames = append(frames, payload...)
	}
	hdr := make([]byte, shipHeaderSize)
	off := copy(hdr, shipMagic)
	var flags byte
	if resp.SnapshotRequired {
		flags |= shipFlagSnapshotRequired
	}
	if resp.CaughtUp {
		flags |= shipFlagCaughtUp
	}
	hdr[off] = flags
	off++
	binary.LittleEndian.PutUint32(hdr[off:], uint32(resp.Shard))
	off += 4
	binary.LittleEndian.PutUint64(hdr[off:], resp.After)
	off += 8
	binary.LittleEndian.PutUint64(hdr[off:], resp.Base)
	off += 8
	binary.LittleEndian.PutUint32(hdr[off:], uint32(len(resp.Records)))
	off += 4
	binary.LittleEndian.PutUint32(hdr[off:], uint32(len(frames)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(frames)
	return err
}

// DecodeTail reads one shipped tail from r, validating the magic, the
// declared framed length, and every frame's CRC. A short read, a
// damaged frame, or a record count that disagrees with the header is an
// error — the follower discards the whole response and retries the
// pull, exactly as recovery discards a torn segment tail.
func DecodeTail(r io.Reader) (*TailResponse, error) {
	hdr := make([]byte, shipHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("wal: shipped tail header: %w", err)
	}
	if string(hdr[:len(shipMagic)]) != shipMagic {
		return nil, fmt.Errorf("wal: shipped tail: bad magic")
	}
	off := len(shipMagic)
	flags := hdr[off]
	off++
	resp := &TailResponse{
		Shard:            int(binary.LittleEndian.Uint32(hdr[off:])),
		SnapshotRequired: flags&shipFlagSnapshotRequired != 0,
		CaughtUp:         flags&shipFlagCaughtUp != 0,
	}
	off += 4
	resp.After = binary.LittleEndian.Uint64(hdr[off:])
	off += 8
	resp.Base = binary.LittleEndian.Uint64(hdr[off:])
	off += 8
	count := binary.LittleEndian.Uint32(hdr[off:])
	off += 4
	byteLen := binary.LittleEndian.Uint32(hdr[off:])
	if byteLen > maxShipBytes {
		return nil, fmt.Errorf("wal: shipped tail declares %d bytes (limit %d)", byteLen, maxShipBytes)
	}
	buf := make([]byte, byteLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wal: shipped tail truncated: %w", err)
	}
	recs, valid := scanFrames(byteReaderAt(buf), 0, int64(len(buf)))
	if valid != int64(len(buf)) || uint32(len(recs)) != count {
		return nil, fmt.Errorf("wal: shipped tail damaged: %d/%d records valid over %d/%d bytes",
			len(recs), count, valid, len(buf))
	}
	resp.Records = recs
	return resp, nil
}

// byteReaderAt adapts a byte slice to io.ReaderAt for scanFrames.
type byteReaderAt []byte

func (b byteReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}
