// Package wal is the per-shard write-ahead log that gives the sharded
// engine crash durability between snapshots. Each engine shard owns its
// own log — shards never contend on a shared log — and appends one
// record per mutation (insert batch, delete, modify) *before* applying
// it, so every acknowledged mutation since the last snapshot survives a
// crash and replays on the next Open.
//
// A shard's log is a directory of fixed-capacity segment files with a
// monotonic sequence number (see segment.go for the byte layout and
// DESIGN.md §7 for the protocol). Appends land in the newest — active —
// segment and rotate to a fresh one at capacity; older segments are
// sealed: immutable, and fsynced before anything newer exists (under
// the syncing policies), so a crash can tear only the newest tail.
// Segmentation is what makes checkpoints lock-light: the engine rotates
// every shard to a fresh segment under the shard locks (a cheap
// create), releases them, writes and fsyncs the snapshot outside the
// lock hold, and only then deletes the sealed segments the snapshot
// covers (DropSealed) — writers keep committing into the new segments
// for the whole snapshot encode.
//
// Open scans every live segment in sequence order, validates headers
// and CRCs, returns the concatenated records, and truncates a torn
// final tail — a record cut mid-append is discarded cleanly, never
// mistaken for data. Records carry the shard's mutation epoch after
// applying, which is the snapshot truncation point: recovery replays
// only records beyond the snapshot's epoch, so sealed segments left
// behind by a crash between a snapshot rename and the deferred deletion
// cannot double-apply. Multi-shard insert batches carry a shared batch
// id plus the full target-shard set; recovery drops batches that did
// not reach every target's log (they were never acknowledged),
// preserving the engine's atomic-batch guarantee across a crash.
//
// Three sync policies trade durability for throughput: SyncAlways
// acknowledges an append only after an fsync covers it — batched by a
// per-shard group committer, so N concurrent appenders share one fsync
// instead of paying N (commit.go) — and survives power loss.
// SyncInterval leaves fsync to a periodic caller (bounded loss on power
// failure). SyncNever never fsyncs (the OS page cache still preserves
// every acknowledged write across a process crash — SIGKILL loses
// nothing under any policy).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs (group-committed) every append before it is
	// acknowledged.
	SyncAlways SyncPolicy = iota
	// SyncInterval defers fsync to periodic Sync calls by the owner.
	SyncInterval
	// SyncNever never fsyncs; the OS flushes at its leisure.
	SyncNever
)

// Options tunes a log beyond its sync policy. The zero value selects
// defaults.
type Options struct {
	// SegmentBytes is the rotation capacity: an append that would grow
	// the active segment past it seals the segment and starts a fresh
	// one. 0 selects DefaultSegmentBytes. A single record larger than
	// the capacity still lands (in a segment of its own) — capacity
	// bounds rotation, not record size.
	SegmentBytes int64

	// noGroupCommit disables the SyncAlways group committer, making
	// every appender pay its own fsync — the pre-segmentation behaviour,
	// kept (package-internal) as the benchmark baseline group commit is
	// measured against.
	noGroupCommit bool
}

// Log is one shard's append-only write-ahead log over a segment
// directory. All methods are safe for concurrent use; the engine
// additionally serializes appends under the shard's write lock, so
// records land in mutation order.
type Log struct {
	dir    string
	shard  int
	policy SyncPolicy
	segCap int64
	group  bool

	// mu guards the segment state (active, sealed, sizes) and the sticky
	// error. fsyncs happen outside it wherever possible: the group
	// committer syncs after releasing it, so appenders on other offsets
	// keep writing while a batch commits.
	mu     sync.Mutex
	active *segment
	sealed []sealedSegment
	// sealedBytes caches the sealed segments' total valid length;
	// liveBytes mirrors sealedBytes + active.size after every size
	// change, so Size is a lock-free read — cheap enough for a
	// per-mutation checkpoint-trigger probe across many shards.
	sealedBytes int64
	liveBytes   atomic.Int64
	closed      bool
	// err is sticky: once the on-disk state is unknowable (a failed
	// fsync, a failed rollback) the log refuses further writes rather
	// than risk replaying an unacknowledged record.
	err error

	// appenders tracks in-flight Append calls so Close stops the
	// committer only after the queue can no longer grow.
	appenders sync.WaitGroup

	// Group-commit plumbing (SyncAlways with grouping enabled).
	commitCh      chan commitReq
	stopCh        chan struct{}
	committerDone chan struct{}
	// commitSyncHook, when non-nil, runs before each group fsync —
	// test-only, to make batch formation observable on fast storage.
	commitSyncHook func()

	// Operational counters, exposed through Stats.
	groupCommits   atomic.Uint64
	groupedRecords atomic.Uint64
	rotations      atomic.Uint64

	// obsv is the optional metrics sink (observe.go), attached after
	// Open by the store facade. Atomic so attachment never races an
	// in-flight append.
	obsv atomic.Pointer[Observer]
}

// Stats is a point-in-time operational summary of one shard's log.
type Stats struct {
	// Segments counts live segment files (sealed + active).
	Segments int
	// Bytes is the total valid length across live segments.
	Bytes int64
	// GroupCommits counts fsync batches the group committer issued;
	// GroupedRecords counts the appends those batches acknowledged.
	// GroupedRecords / GroupCommits is the achieved batching factor.
	GroupCommits   uint64
	GroupedRecords uint64
	// Rotations counts segment rotations (capacity- and
	// checkpoint-triggered).
	Rotations uint64
	// DurableBytes is the durable watermark: sealed bytes plus the
	// fsync-covered prefix of the active segment. Everything below it
	// survives power loss and is what TailSince ships under SyncAlways
	// — the follower lag observable is Bytes - DurableBytes.
	DurableBytes int64
}

// Open opens (creating if absent) the shard's segmented log in the
// directory at path, scans every live segment in sequence order, and
// returns the concatenated intact records. A torn tail — the crash hit
// mid-append or mid-rotation — is truncated so the log ends on a frame
// boundary ready for appends. The pre-segmented single-file layout is
// refused with a distinct error rather than misread.
func Open(path string, shard int, policy SyncPolicy, opts Options) (*Log, []Record, error) {
	if info, err := os.Stat(path); err == nil && !info.IsDir() {
		return nil, nil, fmt.Errorf("wal: %s is a file, not a segment directory (a pre-segmented v1 log cannot be opened by this version)", path)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	segCap := opts.SegmentBytes
	if segCap <= 0 {
		segCap = DefaultSegmentBytes
	}
	l := &Log{
		dir:    path,
		shard:  shard,
		policy: policy,
		segCap: segCap,
		group:  policy == SyncAlways && !opts.noGroupCommit,
	}
	recs, err := l.load()
	if err != nil {
		return nil, nil, err
	}
	if l.group {
		l.startCommitter()
	}
	return l, recs, nil
}

// load scans the directory's segments in sequence order, accumulating
// records until the end or the first damage. Damage in the newest
// segment is the ordinary torn tail (truncate it); damage in an older
// one means every later segment postdates an unsynced tail — nothing in
// them was ever acknowledged (sealing fsyncs before creating a
// successor under the syncing policies) — so they are deleted and the
// damaged segment becomes the truncated active one.
func (l *Log) load() ([]Record, error) {
	segs, err := listSegments(l.dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		seg, err := createSegment(l.dir, l.shard, 1)
		if err != nil {
			return nil, err
		}
		l.active = seg
		l.updateLiveLocked()
		return nil, nil
	}

	var all []Record
	for i, meta := range segs {
		f, recs, valid, torn, err := openSegment(meta.path, l.shard, meta.seq)
		if err != nil {
			return nil, err
		}
		all = append(all, recs...)
		if !torn {
			if i == len(segs)-1 {
				l.active = &segment{f: f, path: meta.path, seq: meta.seq, size: valid, acked: valid}
				l.updateLiveLocked()
				return all, nil
			}
			l.sealed = append(l.sealed, sealedSegment{path: meta.path, seq: meta.seq, size: valid})
			l.sealedBytes += valid
			f.Close()
			continue
		}

		// Torn segment: truncate the tear (or reinitialize a torn
		// header) and make it the active segment; later segments hold
		// only unacknowledged bytes — remove them.
		if valid < int64(segHeaderSize) {
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: reset torn header %s: %w", meta.path, err)
			}
			if _, err := f.WriteAt(encodeSegmentHeader(l.shard, meta.seq), 0); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: rewrite header %s: %w", meta.path, err)
			}
			valid = int64(segHeaderSize)
		} else if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", meta.path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync %s: %w", meta.path, err)
		}
		for _, later := range segs[i+1:] {
			if err := os.Remove(later.path); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: remove unacknowledged segment %s: %w", later.path, err)
			}
		}
		l.active = &segment{f: f, path: meta.path, seq: meta.seq, size: valid, acked: valid}
		l.updateLiveLocked()
		return all, nil
	}
	return all, nil
}

// Append frames and writes one record at the end of the active segment,
// rotating first when the segment is at capacity. Under SyncAlways the
// call returns only after an fsync covers the record — one fsync per
// concurrent batch via the group committer. A failed write rolls the
// segment back to the previous frame boundary; if the rollback (or a
// group fsync) cannot leave the on-disk state knowable, the log goes
// sticky-broken and refuses further appends — a silently replayable
// unacknowledged record would be the dishonest alternative.
func (l *Log) Append(rec *Record) error {
	if o := l.obsv.Load(); o != nil && o.AppendNs != nil {
		start := time.Now()
		err := l.append(rec)
		o.AppendNs.Observe(uint64(time.Since(start)))
		return err
	}
	return l.append(rec)
}

func (l *Log) append(rec *Record) error {
	wait, err := l.appendAsync(rec)
	if err != nil {
		return err
	}
	return wait()
}

// AppendAsync splits Append into its two halves: staging — frame,
// write at the staged offset, everything that must happen in mutation
// order — runs before AppendAsync returns, and the durability
// acknowledgement moves into the returned wait function. A staging
// failure (encode, rotation, write, sticky-broken, closed) is
// returned immediately with a nil wait, exactly as Append would have
// rejected it. The engine stages under the shard write lock and waits
// after releasing it, so same-shard writers overlap their fsyncs
// instead of serializing them through the lock hold.
//
// A non-nil wait MUST be called on every path — including caller-side
// error paths — because under group commit it holds the appender
// registration Close drains before stopping the committer; leaking it
// hangs Close. Calling it again is harmless (the first verdict is
// replayed). Under SyncInterval/SyncNever and ungrouped SyncAlways
// the verdict is already settled and wait returns it immediately.
func (l *Log) AppendAsync(rec *Record) (wait func() error, err error) {
	if o := l.obsv.Load(); o != nil && o.AppendNs != nil {
		start := time.Now()
		wait, err := l.appendAsync(rec)
		if err != nil {
			o.AppendNs.Observe(uint64(time.Since(start)))
			return nil, err
		}
		return func() error {
			err := wait()
			o.AppendNs.Observe(uint64(time.Since(start)))
			return err
		}, nil
	}
	return l.appendAsync(rec)
}

// settledWait is the wait of an append whose verdict needs no
// out-of-lock half.
func settledWait(err error) func() error {
	return func() error { return err }
}

func (l *Log) appendAsync(rec *Record) (func() error, error) {
	payload, err := encodePayload(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxRecordSize {
		// scanFrames treats an over-limit length prefix as a torn tail,
		// so an oversized frame — and everything after it — would
		// silently vanish on the next Open. Refuse it before it is
		// acknowledged.
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds the %d limit (split the batch)",
			len(payload), maxRecordSize)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)

	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return nil, err
	}
	if l.closed {
		l.mu.Unlock()
		return nil, errClosed
	}
	if l.active.size > int64(segHeaderSize) && l.active.size+int64(len(frame)) > l.segCap {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return nil, err
		}
	}
	seg := l.active
	if _, err := seg.f.WriteAt(frame, seg.size); err != nil {
		err = l.rollbackLocked(seg, err)
		l.mu.Unlock()
		return nil, err
	}
	seg.size += int64(len(frame))
	l.updateLiveLocked()
	if l.group {
		// Registered before releasing mu, so Close (which marks closed
		// under mu first) cannot stop the committer while this appender
		// is between the write and the enqueue. The registration is
		// released by the wait — which is why wait must always run.
		l.appenders.Add(1)
		l.mu.Unlock()
		var once sync.Once
		var verdict error
		return func() error {
			once.Do(func() {
				defer l.appenders.Done()
				verdict = l.awaitCommit()
			})
			return verdict
		}, nil
	}
	if l.policy == SyncAlways {
		// Ungrouped always-sync (benchmark baseline): pay the fsync
		// inline, rolling the frame back on failure exactly like the
		// pre-segmentation log.
		if err := l.syncFile(seg.f); err != nil {
			seg.size -= int64(len(frame))
			l.updateLiveLocked()
			err = l.rollbackLocked(seg, err)
			l.mu.Unlock()
			return nil, err
		}
		seg.acked = seg.size
	}
	l.mu.Unlock()
	return settledWait(nil), nil
}

// rollbackLocked truncates the segment back to its recorded valid size
// after a failed write, persisting the truncation. If the rollback
// itself cannot be made durable the log goes sticky-broken — with the
// on-disk state unknowable, refusing further appends is the honest
// failure. The caller must hold mu.
func (l *Log) rollbackLocked(seg *segment, cause error) error {
	if terr := seg.f.Truncate(seg.size); terr != nil {
		l.err = fmt.Errorf("wal: %s broken: append failed (%v) and rollback failed (%v)", seg.path, cause, terr)
		return l.err
	}
	if serr := seg.f.Sync(); serr != nil {
		l.err = fmt.Errorf("wal: %s broken: append failed (%v) and rollback sync failed (%v)", seg.path, cause, serr)
		return l.err
	}
	return fmt.Errorf("wal: append %s: %w", seg.path, cause)
}

// rotateLocked seals the active segment and opens its successor. Under
// the syncing policies the seal fsyncs the outgoing segment first —
// the invariant that lets recovery treat damage in a non-final segment
// as proof that later segments hold nothing acknowledged. The caller
// must hold mu.
func (l *Log) rotateLocked() error {
	seg := l.active
	if l.policy != SyncNever {
		if err := l.syncFile(seg.f); err != nil {
			// Refuse to create a successor over an unsynced tail; the
			// failed fsync leaves the page-cache state unknowable. Under
			// group commit, frames beyond the durable watermark belong
			// to appenders still awaiting their fsync — they were never
			// acknowledged and must not replay, so roll them back
			// exactly like a failed group commit would (under the other
			// policies every appended frame is already acknowledged, and
			// discarding any of them would be the real corruption).
			if l.group {
				if terr := seg.f.Truncate(seg.acked); terr != nil {
					l.err = fmt.Errorf("wal: %s broken: seal fsync failed (%v) and rollback failed (%v)",
						seg.path, err, terr)
					return l.err
				}
				seg.size = seg.acked
				l.updateLiveLocked()
			}
			l.err = fmt.Errorf("wal: %s broken: seal fsync failed: %v", seg.path, err)
			return l.err
		}
		seg.acked = seg.size
	}
	next, err := createSegment(l.dir, l.shard, seg.seq+1)
	if err != nil {
		return err
	}
	seg.f.Close()
	l.sealed = append(l.sealed, sealedSegment{path: seg.path, seq: seg.seq, size: seg.size})
	l.sealedBytes += seg.size
	l.active = next
	l.updateLiveLocked()
	l.rotations.Add(1)
	return nil
}

// Rotate seals the active segment and starts a fresh one, returning the
// highest sealed sequence — the boundary a checkpoint passes to
// DropSealed once its snapshot is durable. Every record appended before
// Rotate is in a sealed segment at or below the boundary; every record
// appended after lands beyond it. An empty active segment with nothing
// sealed is left alone (boundary 0): rotating it would only churn
// files.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, errClosed
	}
	if l.active.size == int64(segHeaderSize) {
		if len(l.sealed) == 0 {
			return 0, nil
		}
		return l.sealed[len(l.sealed)-1].seq, nil
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.sealed[len(l.sealed)-1].seq, nil
}

// DropSealed deletes sealed segments with sequence at or below
// through — the deferred truncation a checkpoint performs after its
// snapshot is durable. Segments a failed deletion leaves behind are
// harmless (their records sit at or below the snapshot's epoch
// truncation points and are skipped on recovery); the error is reported
// for the operator and the next checkpoint retries.
func (l *Log) DropSealed(through uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	kept := l.sealed[:0]
	for _, s := range l.sealed {
		if s.seq > through {
			kept = append(kept, s)
			continue
		}
		if err := os.Remove(s.path); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("wal: drop sealed segment %s: %w", s.path, err)
			}
			kept = append(kept, s)
			continue
		}
		l.sealedBytes -= s.size
	}
	l.sealed = kept
	l.updateLiveLocked()
	return firstErr
}

// Sync forces the active segment to stable storage — the periodic half
// of SyncInterval. Sealed segments were fsynced when sealed.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return errClosed
	}
	if err := l.syncFile(l.active.f); err != nil {
		return fmt.Errorf("wal: sync %s: %w", l.active.path, err)
	}
	l.active.acked = l.active.size
	return nil
}

// updateLiveLocked refreshes the lock-free size mirror after a change
// to the active segment's size or the sealed inventory. The caller
// must hold mu.
func (l *Log) updateLiveLocked() {
	l.liveBytes.Store(l.sealedBytes + l.active.size)
}

// Size returns the total valid length of the log in bytes across every
// live segment (headers included) — the signal WAL-size-triggered
// checkpoints key on. Lock-free: callers may probe it on every
// mutation without touching the appenders' mutex.
func (l *Log) Size() int64 {
	return l.liveBytes.Load()
}

// Stats snapshots the log's operational counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segments := len(l.sealed) + 1
	bytes := l.sealedBytes + l.active.size
	durable := l.sealedBytes + l.active.acked
	l.mu.Unlock()
	return Stats{
		Segments:       segments,
		Bytes:          bytes,
		DurableBytes:   durable,
		GroupCommits:   l.groupCommits.Load(),
		GroupedRecords: l.groupedRecords.Load(),
		Rotations:      l.rotations.Load(),
	}
}

// Dir returns the log's segment directory.
func (l *Log) Dir() string { return l.dir }

// Close stops the group committer after in-flight appends drain, syncs
// the active segment, and closes it. Appends racing Close are either
// fully acknowledged or rejected with a closed-log error — never left
// half-committed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()

	// New appends are now rejected; wait out the ones already past the
	// closed check, then stop the committer.
	l.appenders.Wait()
	if l.group {
		close(l.stopCh)
		<-l.committerDone
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.active.f.Sync(); err != nil {
		l.active.f.Close()
		return fmt.Errorf("wal: sync %s: %w", l.active.path, err)
	}
	return l.active.f.Close()
}
