// Package wal is the per-shard write-ahead log that gives the sharded
// engine crash durability between snapshots. Each engine shard owns its
// own log file — shards never contend on a shared log — and appends one
// record per mutation (insert batch, delete, modify) *before* applying
// it, so every acknowledged mutation since the last snapshot survives a
// crash and replays on the next Open.
//
// A log file is a 12-byte header (magic, format version, shard index)
// followed by length-prefixed, CRC-checksummed frames:
//
//	[4 bytes payload length, LE] [4 bytes CRC-32C of payload, LE] [payload]
//
// The payload encoding is the fixed binary layout of codec.go (see
// DESIGN.md §7 for the byte-level format). Open scans the file,
// validates every CRC, returns the decoded records, and truncates the
// file back to its last valid frame — a torn final record (the process
// died mid-append, or an fsync-less tail was lost) is discarded
// cleanly, never mistaken for data.
//
// Records carry the shard's mutation epoch after applying, which is the
// snapshot truncation point: a snapshot persists each shard's epoch at
// capture, and recovery replays only records beyond it, so a crash
// between a snapshot rename and the log truncation that follows it
// cannot double-apply. Multi-shard insert batches carry a shared batch
// id plus the full target-shard set; recovery drops batches that did
// not reach every target's log (they were never acknowledged),
// preserving the engine's atomic-batch guarantee across a crash.
//
// Three sync policies trade durability for throughput: SyncAlways
// fsyncs every append before the mutation is acknowledged (survives
// power loss), SyncInterval leaves fsync to a periodic caller (bounded
// loss on power failure), SyncNever never fsyncs (the OS page cache
// still preserves every acknowledged write across a process crash —
// SIGKILL loses nothing under any policy).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs every append before it is acknowledged.
	SyncAlways SyncPolicy = iota
	// SyncInterval defers fsync to periodic Sync calls by the owner.
	SyncInterval
	// SyncNever never fsyncs; the OS flushes at its leisure.
	SyncNever
)

const (
	// magic opens every log file: "SSWAL" plus a format version byte
	// pair, so an incompatible future layout is rejected, not misread.
	magic = "SSWAL\x00\x001"
	// headerSize is magic (8) plus the owning shard index (uint32 LE).
	headerSize = len(magic) + 4
	// frameHeaderSize is the payload length plus CRC-32C prefix.
	frameHeaderSize = 8
	// maxRecordSize bounds a single payload so a corrupt length prefix
	// cannot drive an arbitrary allocation.
	maxRecordSize = 64 << 20
)

// castagnoli is the CRC-32C table shared by framing and recovery.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is one shard's append-only write-ahead log. All methods are safe
// for concurrent use; the engine additionally serializes appends under
// the shard's write lock, so records land in mutation order.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	shard  int
	policy SyncPolicy
	// size is the end of the valid prefix — the append offset. Writes
	// go through WriteAt(size) so a failed append can roll back.
	size int64
	// err is sticky: once an append failure cannot be rolled back the
	// log refuses further writes rather than risk a mid-file tear.
	err error
}

// Open opens (creating if absent) the shard's log at path, validates
// the header, scans and returns every intact record, and truncates a
// torn tail so the file ends on a frame boundary ready for appends.
func Open(path string, shard int, policy SyncPolicy) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, shard: shard, policy: policy}
	recs, err := l.init()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return l, recs, nil
}

// init validates or writes the header, scans the valid record prefix,
// and truncates anything beyond it.
func (l *Log) init() ([]Record, error) {
	info, err := l.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("wal: stat %s: %w", l.path, err)
	}
	if info.Size() < int64(headerSize) {
		// Zero bytes, or a header torn by a crash during the log's very
		// first write: no frame fits in under headerSize bytes, so the
		// file provably holds no acknowledged record — reinitialize it
		// instead of refusing to start forever.
		if info.Size() > 0 {
			if err := l.f.Truncate(0); err != nil {
				return nil, fmt.Errorf("wal: reset torn header %s: %w", l.path, err)
			}
		}
		hdr := make([]byte, headerSize)
		copy(hdr, magic)
		binary.LittleEndian.PutUint32(hdr[len(magic):], uint32(l.shard))
		if _, err := l.f.WriteAt(hdr, 0); err != nil {
			return nil, fmt.Errorf("wal: write header %s: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return nil, fmt.Errorf("wal: sync header %s: %w", l.path, err)
		}
		l.size = int64(headerSize)
		return nil, nil
	}

	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(io.NewSectionReader(l.f, 0, int64(headerSize)), hdr); err != nil {
		return nil, fmt.Errorf("wal: %s: truncated header", l.path)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("wal: %s: bad magic (not a shard WAL, or an incompatible format)", l.path)
	}
	if got := int(binary.LittleEndian.Uint32(hdr[len(magic):])); got != l.shard {
		return nil, fmt.Errorf("wal: %s: log belongs to shard %d, want %d", l.path, got, l.shard)
	}

	recs, valid, err := scan(io.NewSectionReader(l.f, 0, info.Size()))
	if err != nil {
		return nil, fmt.Errorf("wal: %s: %w", l.path, err)
	}
	if valid < info.Size() {
		// Torn or trailing-garbage tail: the final frame never finished
		// (crash mid-append) — discard it so appends restart cleanly.
		if err := l.f.Truncate(valid); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return nil, fmt.Errorf("wal: sync %s: %w", l.path, err)
		}
	}
	l.size = valid
	return recs, nil
}

// scan reads frames from after the header until EOF or the first
// damaged frame, returning the decoded records and the byte offset of
// the valid prefix. A damaged frame (short header, short payload,
// CRC mismatch, undecodable payload, oversized length) ends the scan
// without error: everything after it is an unacknowledged tail.
func scan(r *io.SectionReader) ([]Record, int64, error) {
	var recs []Record
	off := int64(headerSize)
	fh := make([]byte, frameHeaderSize)
	for {
		if _, err := io.ReadFull(io.NewSectionReader(r, off, frameHeaderSize), fh); err != nil {
			return recs, off, nil
		}
		n := binary.LittleEndian.Uint32(fh[0:4])
		sum := binary.LittleEndian.Uint32(fh[4:8])
		if n == 0 || n > maxRecordSize {
			return recs, off, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(io.NewSectionReader(r, off+frameHeaderSize, int64(n)), payload); err != nil {
			return recs, off, nil
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += frameHeaderSize + int64(n)
	}
}

// Append frames and writes one record at the end of the valid prefix,
// fsyncing before returning under SyncAlways. A failed write rolls the
// file back to the previous frame boundary; if even the rollback fails
// the log goes sticky-broken and refuses further appends (a mid-file
// tear would silently end replay early — refusing is the honest
// failure).
func (l *Log) Append(rec *Record) error {
	payload, err := encodePayload(rec)
	if err != nil {
		return err
	}
	if len(payload) > maxRecordSize {
		// scan treats an over-limit length prefix as a torn tail, so an
		// oversized frame — and everything after it — would silently
		// vanish on the next Open. Refuse it before it is acknowledged.
		return fmt.Errorf("wal: record payload %d bytes exceeds the %d limit (split the batch)",
			len(payload), maxRecordSize)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if _, err := l.f.WriteAt(frame, l.size); err != nil {
		return l.rollback(err)
	}
	if l.policy == SyncAlways {
		if err := l.f.Sync(); err != nil {
			// The frame is fully written and CRC-valid, so leaving it
			// behind would replay a mutation the caller is about to
			// reject. Roll it back (and persist the rollback) before
			// reporting the failure.
			return l.rollback(err)
		}
	}
	l.size += int64(len(frame))
	return nil
}

// rollback truncates the file back to the last acknowledged frame
// boundary after a failed append, persisting the truncation. If the
// rollback itself cannot be made durable the log goes sticky-broken —
// with the on-disk state unknowable, refusing further appends is the
// honest failure.
func (l *Log) rollback(cause error) error {
	if terr := l.f.Truncate(l.size); terr != nil {
		l.err = fmt.Errorf("wal: %s broken: append failed (%v) and rollback failed (%v)", l.path, cause, terr)
		return l.err
	}
	if serr := l.f.Sync(); serr != nil {
		l.err = fmt.Errorf("wal: %s broken: append failed (%v) and rollback sync failed (%v)", l.path, cause, serr)
		return l.err
	}
	return fmt.Errorf("wal: append %s: %w", l.path, cause)
}

// Sync forces appended records to stable storage — the periodic half of
// SyncInterval.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", l.path, err)
	}
	return nil
}

// Truncate discards every record, resetting the log to header-only —
// called after a snapshot has durably captured everything the log
// holds.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.f.Truncate(int64(headerSize)); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", l.path, err)
	}
	l.size = int64(headerSize)
	return nil
}

// Size returns the current valid length of the log file in bytes
// (header included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: sync %s: %w", l.path, err)
	}
	return l.f.Close()
}
