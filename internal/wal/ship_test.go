package wal

import (
	"bytes"
	"path/filepath"
	"testing"
)

// shipRec builds a minimal delete record with a chosen epoch stamp —
// the shipping layer only cares about epochs and framing, not op
// semantics.
func shipRec(epoch, id uint64) Record {
	return Record{Op: OpDelete, Epoch: epoch, ID: id}
}

func epochs(recs []Record) []uint64 {
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = r.Epoch
	}
	return out
}

func TestTailSinceWatermark(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shard-0000.wal")
	// Tiny segment capacity forces rotation mid-history so the tail
	// spans sealed segments plus the active one.
	l, _, err := Open(dir, 0, SyncNever, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for e := uint64(1); e <= 20; e++ {
		if err := l.Append(&Record{Op: OpDelete, Epoch: e, ID: e}); err != nil {
			t.Fatal(err)
		}
	}

	recs, caughtUp, err := l.TailSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !caughtUp || len(recs) != 20 {
		t.Fatalf("TailSince(0) = %d records, caughtUp=%v; want 20, true", len(recs), caughtUp)
	}
	for i, r := range recs {
		if r.Epoch != uint64(i+1) {
			t.Fatalf("record %d has epoch %d, want %d", i, r.Epoch, i+1)
		}
	}

	recs, caughtUp, err = l.TailSince(13, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !caughtUp || len(recs) != 7 || recs[0].Epoch != 14 {
		t.Fatalf("TailSince(13) = epochs %v, caughtUp=%v; want 14..20, true", epochs(recs), caughtUp)
	}

	recs, caughtUp, err = l.TailSince(20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !caughtUp || len(recs) != 0 {
		t.Fatalf("TailSince(20) = %d records, caughtUp=%v; want 0, true", len(recs), caughtUp)
	}
}

func TestTailSinceBudgetResumes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shard-0000.wal")
	l, _, err := Open(dir, 0, SyncNever, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 50
	for e := uint64(1); e <= n; e++ {
		if err := l.Append(&Record{Op: OpDelete, Epoch: e, ID: e}); err != nil {
			t.Fatal(err)
		}
	}

	// Pull with a budget far below the full tail: each response must be
	// a non-empty prefix, caughtUp=false until the watermark reaches the
	// end, and the concatenation must be exactly 1..n.
	var got []uint64
	after := uint64(0)
	pulls := 0
	for {
		recs, caughtUp, err := l.TailSince(after, 32)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 && !caughtUp {
			t.Fatal("empty response without caughtUp would stall the follower")
		}
		got = append(got, epochs(recs)...)
		if len(recs) > 0 {
			after = recs[len(recs)-1].Epoch
		}
		pulls++
		if caughtUp {
			break
		}
		if pulls > n+1 {
			t.Fatal("budgeted pulls did not converge")
		}
	}
	if pulls < 2 {
		t.Fatalf("budget of 32 bytes served %d records in one pull — budget not enforced", n)
	}
	if len(got) != n {
		t.Fatalf("resumed pulls yielded %d records, want %d", len(got), n)
	}
	for i, e := range got {
		if e != uint64(i+1) {
			t.Fatalf("resumed stream out of order at %d: %v", i, got)
		}
	}
}

// TestTailSinceEqualEpochRun asserts the correctness rule the epoch
// watermark depends on: a response never ends inside an equal-epoch
// run. Non-effectual records share the NEXT effectual record's stamp,
// so cutting between two equal-epoch records would strand the run's
// tail behind an already-advanced watermark.
func TestTailSinceEqualEpochRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shard-0000.wal")
	l, _, err := Open(dir, 0, SyncNever, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Epoch layout: 1, then a long run of 7s (no-ops stamped with the
	// next effectual epoch), then 8.
	stamps := []uint64{1, 7, 7, 7, 7, 7, 7, 7, 7, 8}
	for i, e := range stamps {
		if err := l.Append(&Record{Op: OpDelete, Epoch: e, ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	// A 1-byte budget is exceeded by the very first record; the
	// response must still carry the entire run of 7s, cutting only at
	// the epoch increase (before the epoch-8 record).
	recs, caughtUp, err := l.TailSince(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 || caughtUp {
		t.Fatalf("budgeted response cut inside an equal-epoch run: epochs %v, caughtUp=%v", epochs(recs), caughtUp)
	}
	for i := 0; i < 8; i++ {
		if recs[i].Epoch != 7 {
			t.Fatalf("expected run of epoch-7 records, got %v", epochs(recs))
		}
	}
	// Resuming from the run's shared stamp picks up the epoch-8 record.
	recs, caughtUp, err = l.TailSince(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch != 8 || !caughtUp {
		t.Fatalf("resume after run = epochs %v, caughtUp=%v; want [8], true", epochs(recs), caughtUp)
	}
}

// TestTailSinceSyncAlwaysDurableOnly asserts that under SyncAlways only
// the fsync-covered prefix of the active segment ships: a follower must
// never hold a record the leader could roll back.
func TestTailSinceSyncAlwaysDurableOnly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shard-0000.wal")
	l, _, err := Open(dir, 0, SyncAlways, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for e := uint64(1); e <= 5; e++ {
		if err := l.Append(&Record{Op: OpDelete, Epoch: e, ID: e}); err != nil {
			t.Fatal(err)
		}
	}
	// Append acked all five (group commit fsyncs before returning), so
	// the durable watermark covers them.
	recs, caughtUp, err := l.TailSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !caughtUp || len(recs) != 5 {
		t.Fatalf("durable tail = %d records, caughtUp=%v; want 5, true", len(recs), caughtUp)
	}
	st := l.Stats()
	if st.DurableBytes != st.Bytes {
		t.Fatalf("after acked appends DurableBytes=%d != Bytes=%d", st.DurableBytes, st.Bytes)
	}
}

func TestEncodeDecodeTailRoundTrip(t *testing.T) {
	resp := &TailResponse{
		Shard:    3,
		After:    11,
		Base:     4,
		CaughtUp: true,
		Records: []Record{
			shipRec(12, 100),
			shipRec(13, 101),
			{Op: OpInsert, Epoch: 14, BatchID: 9, Targets: []int{1, 2}},
		},
	}
	var buf bytes.Buffer
	if err := EncodeTail(&buf, resp); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTail(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Shard != 3 || back.After != 11 || back.Base != 4 || !back.CaughtUp || back.SnapshotRequired {
		t.Fatalf("header mismatch: %+v", back)
	}
	if len(back.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(back.Records))
	}
	for i := range resp.Records {
		if !recordsEqual(resp.Records[i], back.Records[i]) {
			t.Fatalf("record %d mismatch:\n in %+v\nout %+v", i, resp.Records[i], back.Records[i])
		}
	}

	// The empty SnapshotRequired response round-trips too.
	snap := &TailResponse{Shard: 0, After: 2, Base: 9, SnapshotRequired: true}
	buf.Reset()
	if err := EncodeTail(&buf, snap); err != nil {
		t.Fatal(err)
	}
	back, err = DecodeTail(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.SnapshotRequired || back.CaughtUp || len(back.Records) != 0 || back.Base != 9 {
		t.Fatalf("snapshot-required round trip: %+v", back)
	}
}

// TestDecodeTailRejectsTorn asserts a truncated or bit-flipped ship is
// rejected whole — the follower retries the pull rather than applying a
// silent prefix.
func TestDecodeTailRejectsTorn(t *testing.T) {
	resp := &TailResponse{
		Shard:   1,
		Records: []Record{shipRec(5, 1), shipRec(6, 2), shipRec(7, 3)},
	}
	var buf bytes.Buffer
	if err := EncodeTail(&buf, resp); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Every possible truncation point fails, including mid-header.
	for cut := 0; cut < len(whole); cut++ {
		if _, err := DecodeTail(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("accepted ship truncated to %d/%d bytes", cut, len(whole))
		}
	}

	// A flipped payload byte breaks that frame's CRC.
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := DecodeTail(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("accepted ship with corrupt final frame")
	}

	// A bad magic is rejected before any allocation.
	corrupt = append([]byte(nil), whole...)
	corrupt[0] = 'X'
	if _, err := DecodeTail(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("accepted ship with bad magic")
	}

	// A record count that disagrees with the frames is rejected even
	// when every frame is intact.
	corrupt = append([]byte(nil), whole...)
	countOff := len(shipMagic) + 1 + 4 + 8 + 8
	corrupt[countOff]++
	if _, err := DecodeTail(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("accepted ship whose count disagrees with its frames")
	}
}
