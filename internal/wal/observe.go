package wal

import (
	"os"
	"time"

	"repro/internal/obs"
)

// Observer is the set of metrics one log feeds, attached after Open by
// the store facade (the logs exist before the serving layer builds its
// registry). Any field may be nil; a nil Observer (the default) makes
// every hook a single atomic load on the hot path. The histograms are
// typically shared across every shard's log so the exposition shows
// one distribution per subsystem, not one per shard.
type Observer struct {
	// AppendNs records full Append latency in nanoseconds, including
	// the group-commit wait under SyncAlways.
	AppendNs *obs.Histogram
	// FsyncNs records the duration of each serving-path fsync (group
	// commits, inline SyncAlways, periodic Sync, rotation seals);
	// Fsyncs counts them.
	FsyncNs *obs.Histogram
	Fsyncs  *obs.Counter
	// GroupBatch records how many appends each group fsync
	// acknowledged — the achieved batching factor as a distribution.
	GroupBatch *obs.Histogram
}

// SetObserver attaches (or replaces) the log's metrics sink. Safe to
// call while appends are in flight.
func (l *Log) SetObserver(o *Observer) { l.obsv.Store(o) }

// syncFile fsyncs f, feeding the fsync metrics when an observer is
// attached.
func (l *Log) syncFile(f *os.File) error {
	o := l.obsv.Load()
	if o == nil {
		return f.Sync()
	}
	start := time.Now()
	err := f.Sync()
	if o.FsyncNs != nil {
		o.FsyncNs.Observe(uint64(time.Since(start)))
	}
	if o.Fsyncs != nil {
		o.Fsyncs.Inc()
	}
	return err
}

// observeGroupCommit feeds the batching-factor histogram after a group
// fsync acknowledged n appends.
func (l *Log) observeGroupCommit(n int) {
	if o := l.obsv.Load(); o != nil && o.GroupBatch != nil {
		o.GroupBatch.Observe(uint64(n))
	}
}
