package wal

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/metadata"
)

func randFile(rng *rand.Rand) metadata.File {
	f := metadata.File{
		ID:       rng.Uint64(),
		Path:     string(make([]byte, rng.Intn(64))),
		SubTrace: rng.Intn(7) - 3,
	}
	b := []byte(f.Path)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	f.Path = string(b)
	for a := range f.Attrs {
		f.Attrs[a] = rng.NormFloat64() * 1e9
	}
	return f
}

func randRecord(rng *rand.Rand) Record {
	rec := Record{Epoch: rng.Uint64(), BatchID: rng.Uint64()}
	switch rng.Intn(4) {
	case 3:
		rec.Op = OpFlush
		rec.BatchID = 0
	case 0:
		rec.Op = OpInsert
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			rec.Files = append(rec.Files, randFile(rng))
		}
		if rng.Intn(2) == 0 {
			for i := 0; i < 1+rng.Intn(4); i++ {
				rec.Targets = append(rec.Targets, rng.Intn(64))
			}
		}
	case 1:
		rec.Op = OpDelete
		rec.ID = rng.Uint64()
	default:
		rec.Op = OpModify
		rec.Files = []metadata.File{randFile(rng)}
	}
	return rec
}

// recordsEqual compares records treating nil and empty slices alike
// (the codec does not distinguish them).
func recordsEqual(a, b Record) bool {
	if a.Op != b.Op || a.Epoch != b.Epoch || a.BatchID != b.BatchID || a.ID != b.ID {
		return false
	}
	if len(a.Targets) != len(b.Targets) || len(a.Files) != len(b.Files) {
		return false
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			return false
		}
	}
	for i := range a.Files {
		af, bf := a.Files[i], b.Files[i]
		if af.ID != bf.ID || af.Path != bf.Path || af.SubTrace != bf.SubTrace {
			return false
		}
		for j := range af.Attrs {
			// NaN-safe bit comparison: the codec round-trips IEEE bits.
			if math.Float64bits(af.Attrs[j]) != math.Float64bits(bf.Attrs[j]) {
				return false
			}
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		rec := randRecord(rng)
		buf, err := encodePayload(&rec)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		back, err := decodePayload(buf)
		if err != nil {
			t.Fatalf("decode of freshly encoded record: %v", err)
		}
		if !recordsEqual(rec, back) {
			t.Fatalf("round trip mismatch:\n in %+v\nout %+v", rec, back)
		}
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	rec := Record{Op: OpDelete, Epoch: 3, ID: 9}
	buf, err := encodePayload(&rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][]byte{
		nil,                                // empty
		buf[:len(buf)-1],                   // truncated
		append(buf[:len(buf):len(buf)], 0), // trailing byte
		{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown op
	} {
		if _, err := decodePayload(tc); err == nil {
			t.Fatalf("decode accepted malformed payload %v", tc)
		}
	}
	if _, err := encodePayload(&Record{Op: OpModify}); err == nil {
		t.Fatal("encode accepted modify without a file")
	}
	if _, err := encodePayload(&Record{Op: Op(77)}); err == nil {
		t.Fatal("encode accepted unknown op")
	}
}

// FuzzDecodePayload asserts the codec never panics on arbitrary bytes,
// and that anything it accepts re-encodes to the identical payload —
// the round-trip property that makes replay deterministic.
func FuzzDecodePayload(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 16; i++ {
		rec := randRecord(rng)
		buf, err := encodePayload(&rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodePayload(data)
		if err != nil {
			return
		}
		re, err := encodePayload(&rec)
		if err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs:\n in %v\nout %v", data, re)
		}
	})
}

func openT(t *testing.T, path string, shard int) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path, shard, SyncNever)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, recs
}

func TestAppendScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0000.wal")
	l, recs := openT(t, path, 0)
	if len(recs) != 0 {
		t.Fatalf("fresh log returned %d records", len(recs))
	}
	rng := rand.New(rand.NewSource(3))
	var want []Record
	for i := 0; i < 100; i++ {
		rec := randRecord(rng)
		if err := l.Append(&rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, rec)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openT(t, path, 0)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("reopened log holds %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(want[i], got[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestTornTailTruncatedAtEveryOffset is the kill-mid-append simulation:
// a log whose final frame is cut at every possible byte offset must
// replay the preceding records cleanly, discard the torn tail, and
// accept appends afterwards.
func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	l, _ := openT(t, full, 0)
	rng := rand.New(rand.NewSource(4))
	var want []Record
	for i := 0; i < 3; i++ {
		rec := randRecord(rng)
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	intactSize := l.Size()
	final := Record{Op: OpInsert, Epoch: 77, Files: []metadata.File{randFile(rng)}}
	if err := l.Append(&final); err != nil {
		t.Fatal(err)
	}
	fullSize := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for off := intactSize; off < fullSize; off++ {
		torn := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(torn, data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		tl, recs, err := Open(torn, 0, SyncNever)
		if err != nil {
			t.Fatalf("offset %d: Open: %v", off, err)
		}
		if len(recs) != len(want) {
			t.Fatalf("offset %d: replayed %d records, want %d", off, len(recs), len(want))
		}
		if tl.Size() != intactSize {
			t.Fatalf("offset %d: torn tail not truncated: size %d, want %d", off, tl.Size(), intactSize)
		}
		// The log must keep working after discarding the tail.
		rec := Record{Op: OpDelete, Epoch: 99, ID: 1}
		if err := tl.Append(&rec); err != nil {
			t.Fatalf("offset %d: append after truncation: %v", off, err)
		}
		if err := tl.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs2, err := Open(torn, 0, SyncNever)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs2) != len(want)+1 {
			t.Fatalf("offset %d: reopen after append: %d records, want %d", off, len(recs2), len(want)+1)
		}
	}
}

func TestCorruptPayloadEndsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	l, _ := openT(t, path, 0)
	for i := 0; i < 3; i++ {
		rec := Record{Op: OpDelete, Epoch: uint64(i + 1), ID: uint64(i)}
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	sz := l.Size()
	l.Close()
	data, _ := os.ReadFile(path)
	data[sz-1] ^= 0xFF // flip a payload byte of the final record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs := openT(t, path, 0)
	defer l2.Close()
	if len(recs) != 2 {
		t.Fatalf("scan past a corrupt CRC: got %d records, want 2", len(recs))
	}
}

func TestTruncateEmptiesLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _ := openT(t, path, 3)
	rec := Record{Op: OpDelete, Epoch: 1, ID: 42}
	if err := l.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Op: OpDelete, Epoch: 2, ID: 43}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs := openT(t, path, 3)
	if len(recs) != 1 || recs[0].ID != 43 {
		t.Fatalf("after truncate+append: %+v", recs)
	}
}

// A file shorter than the header (crash during the very first write)
// provably holds no record — Open must reinitialize it, not refuse the
// boot forever.
func TestOpenReinitializesTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn-header.wal")
	if err := os.WriteFile(path, []byte("SSWAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs := openT(t, path, 0)
	if len(recs) != 0 {
		t.Fatalf("torn header yielded %d records", len(recs))
	}
	if err := l.Append(&Record{Op: OpDelete, Epoch: 1, ID: 7}); err != nil {
		t.Fatalf("append after reinit: %v", err)
	}
	l.Close()
	_, recs = openT(t, path, 0)
	if len(recs) != 1 {
		t.Fatalf("reinitialized log replayed %d records, want 1", len(recs))
	}
}

func TestOpenValidatesHeader(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.wal")
	l, _ := openT(t, p1, 1)
	l.Close()
	if _, _, err := Open(p1, 2, SyncNever); err == nil {
		t.Fatal("Open accepted a log owned by another shard")
	}
	p2 := filepath.Join(dir, "b.wal")
	if err := os.WriteFile(p2, []byte("definitely not a WAL header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(p2, 0, SyncNever); err == nil {
		t.Fatal("Open accepted garbage magic")
	}
}

func TestOpStrings(t *testing.T) {
	if !reflect.DeepEqual(
		[]string{OpInsert.String(), OpDelete.String(), OpModify.String(), OpFlush.String(), Op(9).String()},
		[]string{"insert", "delete", "modify", "flush", "op(9)"}) {
		t.Fatal("Op.String drifted from the format documentation")
	}
}

// An oversized record must be refused at Append — if it reached the
// file, scan would read its length prefix as a torn tail and Open
// would silently truncate it (and every later acknowledged record)
// away.
func TestAppendRejectsOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.wal")
	l, _ := openT(t, path, 0)
	defer l.Close()
	huge := make([]metadata.File, 1100)
	longPath := string(make([]byte, 60<<10))
	for i := range huge {
		huge[i] = metadata.File{ID: uint64(i + 1), Path: longPath}
	}
	rec := Record{Op: OpInsert, Epoch: 1, Files: huge}
	if err := l.Append(&rec); err == nil {
		t.Fatal("Append accepted a record larger than maxRecordSize")
	}
	if err := l.Append(&Record{Op: OpDelete, Epoch: 1, ID: 5}); err != nil {
		t.Fatalf("log unusable after rejecting an oversized record: %v", err)
	}
	if l.Size() <= int64(headerSize) {
		t.Fatal("follow-up append did not land")
	}
}
