package wal

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metadata"
)

func randFile(rng *rand.Rand) metadata.File {
	f := metadata.File{
		ID:       rng.Uint64(),
		Path:     string(make([]byte, rng.Intn(64))),
		SubTrace: rng.Intn(7) - 3,
	}
	b := []byte(f.Path)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	f.Path = string(b)
	for a := range f.Attrs {
		f.Attrs[a] = rng.NormFloat64() * 1e9
	}
	return f
}

func randRecord(rng *rand.Rand) Record {
	rec := Record{Epoch: rng.Uint64(), BatchID: rng.Uint64()}
	switch rng.Intn(4) {
	case 3:
		rec.Op = OpFlush
		rec.BatchID = 0
	case 0:
		rec.Op = OpInsert
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			rec.Files = append(rec.Files, randFile(rng))
		}
		if rng.Intn(2) == 0 {
			for i := 0; i < 1+rng.Intn(4); i++ {
				rec.Targets = append(rec.Targets, rng.Intn(64))
			}
		}
	case 1:
		rec.Op = OpDelete
		rec.ID = rng.Uint64()
	default:
		rec.Op = OpModify
		rec.Files = []metadata.File{randFile(rng)}
	}
	return rec
}

// recordsEqual compares records treating nil and empty slices alike
// (the codec does not distinguish them).
func recordsEqual(a, b Record) bool {
	if a.Op != b.Op || a.Epoch != b.Epoch || a.BatchID != b.BatchID || a.ID != b.ID {
		return false
	}
	if len(a.Targets) != len(b.Targets) || len(a.Files) != len(b.Files) {
		return false
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			return false
		}
	}
	for i := range a.Files {
		af, bf := a.Files[i], b.Files[i]
		if af.ID != bf.ID || af.Path != bf.Path || af.SubTrace != bf.SubTrace {
			return false
		}
		for j := range af.Attrs {
			// NaN-safe bit comparison: the codec round-trips IEEE bits.
			if math.Float64bits(af.Attrs[j]) != math.Float64bits(bf.Attrs[j]) {
				return false
			}
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		rec := randRecord(rng)
		buf, err := encodePayload(&rec)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		back, err := decodePayload(buf)
		if err != nil {
			t.Fatalf("decode of freshly encoded record: %v", err)
		}
		if !recordsEqual(rec, back) {
			t.Fatalf("round trip mismatch:\n in %+v\nout %+v", rec, back)
		}
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	rec := Record{Op: OpDelete, Epoch: 3, ID: 9}
	buf, err := encodePayload(&rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][]byte{
		nil,                                // empty
		buf[:len(buf)-1],                   // truncated
		append(buf[:len(buf):len(buf)], 0), // trailing byte
		{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown op
	} {
		if _, err := decodePayload(tc); err == nil {
			t.Fatalf("decode accepted malformed payload %v", tc)
		}
	}
	if _, err := encodePayload(&Record{Op: OpModify}); err == nil {
		t.Fatal("encode accepted modify without a file")
	}
	if _, err := encodePayload(&Record{Op: Op(77)}); err == nil {
		t.Fatal("encode accepted unknown op")
	}
}

// FuzzDecodePayload asserts the codec never panics on arbitrary bytes,
// and that anything it accepts re-encodes to the identical payload —
// the round-trip property that makes replay deterministic.
func FuzzDecodePayload(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 16; i++ {
		rec := randRecord(rng)
		buf, err := encodePayload(&rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodePayload(data)
		if err != nil {
			return
		}
		re, err := encodePayload(&rec)
		if err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs:\n in %v\nout %v", data, re)
		}
	})
}

func openT(t testing.TB, dir string, shard int) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(dir, shard, SyncNever, Options{})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, recs
}

// segPaths lists the directory's segment files in sequence order.
func segPaths(t testing.TB, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches)
	return matches
}

// activePath returns the active segment's file path.
func activePath(l *Log) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active.path
}

func TestAppendScanRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shard-0000.wal")
	l, recs := openT(t, dir, 0)
	if len(recs) != 0 {
		t.Fatalf("fresh log returned %d records", len(recs))
	}
	rng := rand.New(rand.NewSource(3))
	var want []Record
	for i := 0; i < 100; i++ {
		rec := randRecord(rng)
		if err := l.Append(&rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, rec)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openT(t, dir, 0)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("reopened log holds %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(want[i], got[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestCapacityRotationSpansSegments drives appends through a tiny
// segment capacity so the log rotates many times, then asserts the
// reopened log replays every record in order across the segment
// boundaries.
func TestCapacityRotationSpansSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	l, _, err := Open(dir, 0, SyncNever, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 200; i++ {
		rec := Record{Op: OpDelete, Epoch: uint64(i + 1), ID: uint64(i)}
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("256-byte capacity produced only %d segments", st.Segments)
	}
	if st.Rotations != uint64(st.Segments-1) {
		t.Fatalf("rotations %d for %d segments", st.Rotations, st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := segPaths(t, dir); len(got) != st.Segments {
		t.Fatalf("%d segment files on disk, stats said %d", len(got), st.Segments)
	}
	l2, recs, err := Open(dir, 0, SyncNever, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), len(want))
	}
	for i := range want {
		if !recordsEqual(want[i], recs[i]) {
			t.Fatalf("record %d mismatch after multi-segment replay", i)
		}
	}
}

// TestRotateAndDropSealed is the checkpoint protocol at the WAL layer:
// Rotate returns a boundary covering everything appended so far,
// appends after it land beyond the boundary, and DropSealed(boundary)
// retires exactly the pre-rotation records.
func TestRotateAndDropSealed(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	l, _ := openT(t, dir, 0)
	for i := 0; i < 5; i++ {
		if err := l.Append(&Record{Op: OpDelete, Epoch: uint64(i + 1), ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	boundary, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if boundary == 0 {
		t.Fatal("rotate of a non-empty log returned boundary 0")
	}
	for i := 5; i < 8; i++ {
		if err := l.Append(&Record{Op: OpDelete, Epoch: uint64(i + 1), ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash before DropSealed: everything must still replay.
	l2, recs := openT(t, dir, 0)
	if len(recs) != 8 {
		t.Fatalf("before deferred truncation: replayed %d records, want 8", len(recs))
	}
	l2.Close()

	l3, _ := openT(t, dir, 0)
	if err := l3.DropSealed(boundary); err != nil {
		t.Fatal(err)
	}
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs = openT(t, dir, 0)
	if len(recs) != 3 || recs[0].ID != 5 {
		t.Fatalf("after DropSealed(%d): %d records, first %+v", boundary, len(recs), recs)
	}
}

// TestRotateEmptyLogIsNoop: rotating an empty active segment with
// nothing sealed creates no file churn and reports boundary 0.
func TestRotateEmptyLogIsNoop(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	l, _ := openT(t, dir, 0)
	defer l.Close()
	for i := 0; i < 3; i++ {
		boundary, err := l.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		if boundary != 0 {
			t.Fatalf("empty rotate %d returned boundary %d", i, boundary)
		}
	}
	if got := segPaths(t, l.Dir()); len(got) != 1 {
		t.Fatalf("empty rotations churned segments: %v", got)
	}
}

// TestTornTailTruncatedAtEveryOffset is the kill-mid-append simulation:
// an active segment whose final frame is cut at every possible byte
// offset must replay the preceding records cleanly, discard the torn
// tail, and accept appends afterwards.
func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	base := t.TempDir()
	full := filepath.Join(base, "full")
	l, _ := openT(t, full, 0)
	rng := rand.New(rand.NewSource(4))
	var want []Record
	for i := 0; i < 3; i++ {
		rec := randRecord(rng)
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	intactSize := l.Size()
	final := Record{Op: OpInsert, Epoch: 77, Files: []metadata.File{randFile(rng)}}
	if err := l.Append(&final); err != nil {
		t.Fatal(err)
	}
	fullSize := l.Size()
	segPath := activePath(l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for off := intactSize; off < fullSize; off++ {
		torn := filepath.Join(base, fmt.Sprintf("torn-%d", off))
		if err := os.MkdirAll(torn, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(torn, filepath.Base(segPath)), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		tl, recs, err := Open(torn, 0, SyncNever, Options{})
		if err != nil {
			t.Fatalf("offset %d: Open: %v", off, err)
		}
		if len(recs) != len(want) {
			t.Fatalf("offset %d: replayed %d records, want %d", off, len(recs), len(want))
		}
		if tl.Size() != intactSize {
			t.Fatalf("offset %d: torn tail not truncated: size %d, want %d", off, tl.Size(), intactSize)
		}
		// The log must keep working after discarding the tail.
		rec := Record{Op: OpDelete, Epoch: 99, ID: 1}
		if err := tl.Append(&rec); err != nil {
			t.Fatalf("offset %d: append after truncation: %v", off, err)
		}
		if err := tl.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs2, err := Open(torn, 0, SyncNever, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs2) != len(want)+1 {
			t.Fatalf("offset %d: reopen after append: %d records, want %d", off, len(recs2), len(want)+1)
		}
	}
}

// TestTornMiddleSegmentDropsLaterSegments: damage in a sealed segment
// means the tail it cut — and every later segment, which postdates the
// unsynced bytes — was never acknowledged. The scan must stop at the
// tear, truncate it, and remove the later segments rather than replay
// around a hole.
func TestTornMiddleSegmentDropsLaterSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	l, _ := openT(t, dir, 0)
	for i := 0; i < 4; i++ {
		if err := l.Append(&Record{Op: OpDelete, Epoch: uint64(i + 1), ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		if err := l.Append(&Record{Op: OpDelete, Epoch: uint64(i + 1), ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs := segPaths(t, dir)
	if len(segs) != 2 {
		t.Fatalf("expected 2 segments, got %v", segs)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-3); err != nil { // tear the sealed segment's last frame
		t.Fatal(err)
	}
	_, recs := openT(t, dir, 0)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records past a mid-log tear, want 3", len(recs))
	}
	if got := segPaths(t, dir); len(got) != 1 {
		t.Fatalf("segments after the tear survived recovery: %v", got)
	}
}

func TestCorruptPayloadEndsScan(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c")
	l, _ := openT(t, dir, 0)
	for i := 0; i < 3; i++ {
		rec := Record{Op: OpDelete, Epoch: uint64(i + 1), ID: uint64(i)}
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	sz := l.Size()
	segPath := activePath(l)
	l.Close()
	data, _ := os.ReadFile(segPath)
	data[sz-1] ^= 0xFF // flip a payload byte of the final record
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs := openT(t, dir, 0)
	defer l2.Close()
	if len(recs) != 2 {
		t.Fatalf("scan past a corrupt CRC: got %d records, want 2", len(recs))
	}
}

// A segment shorter than its header (crash during the segment's very
// first write) provably holds no record — Open must reinitialize it,
// not refuse the boot forever.
func TestOpenReinitializesTornHeader(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentFileName(1)), []byte("SSWAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs := openT(t, dir, 0)
	if len(recs) != 0 {
		t.Fatalf("torn header yielded %d records", len(recs))
	}
	if err := l.Append(&Record{Op: OpDelete, Epoch: 1, ID: 7}); err != nil {
		t.Fatalf("append after reinit: %v", err)
	}
	l.Close()
	_, recs = openT(t, dir, 0)
	if len(recs) != 1 {
		t.Fatalf("reinitialized log replayed %d records, want 1", len(recs))
	}
}

func TestOpenValidatesHeader(t *testing.T) {
	base := t.TempDir()
	d1 := filepath.Join(base, "a")
	l, _ := openT(t, d1, 1)
	if err := l.Append(&Record{Op: OpDelete, Epoch: 1, ID: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, _, err := Open(d1, 2, SyncNever, Options{}); err == nil {
		t.Fatal("Open accepted a log owned by another shard")
	}
	d2 := filepath.Join(base, "b")
	if err := os.MkdirAll(d2, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d2, segmentFileName(1)),
		[]byte("definitely not a WAL segment header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(d2, 0, SyncNever, Options{}); err == nil {
		t.Fatal("Open accepted garbage magic")
	}
	d3 := filepath.Join(base, "c")
	if err := os.MkdirAll(d3, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d3, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(d3, 0, SyncNever, Options{}); err == nil {
		t.Fatal("Open accepted a foreign file inside the segment directory")
	}
	// A pre-segmented v1 single-file log must be refused with a clear
	// error, never misread as a directory.
	v1 := filepath.Join(base, "old.wal")
	if err := os.WriteFile(v1, []byte("SSWAL\x00\x001rest"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(v1, 0, SyncNever, Options{}); err == nil {
		t.Fatal("Open accepted a v1 single-file log path")
	}
}

func TestOpStrings(t *testing.T) {
	if !reflect.DeepEqual(
		[]string{OpInsert.String(), OpDelete.String(), OpModify.String(), OpFlush.String(), Op(9).String()},
		[]string{"insert", "delete", "modify", "flush", "op(9)"}) {
		t.Fatal("Op.String drifted from the format documentation")
	}
}

// An oversized record must be refused at Append — if it reached a
// segment, scanFrames would read its length prefix as a torn tail and
// Open would silently truncate it (and every later acknowledged record)
// away.
func TestAppendRejectsOversizedRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "big")
	l, _ := openT(t, dir, 0)
	defer l.Close()
	huge := make([]metadata.File, 1100)
	longPath := string(make([]byte, 60<<10))
	for i := range huge {
		huge[i] = metadata.File{ID: uint64(i + 1), Path: longPath}
	}
	rec := Record{Op: OpInsert, Epoch: 1, Files: huge}
	if err := l.Append(&rec); err == nil {
		t.Fatal("Append accepted a record larger than maxRecordSize")
	}
	if err := l.Append(&Record{Op: OpDelete, Epoch: 1, ID: 5}); err != nil {
		t.Fatalf("log unusable after rejecting an oversized record: %v", err)
	}
	if l.Size() <= int64(segHeaderSize) {
		t.Fatal("follow-up append did not land")
	}
}

// TestGroupCommitConcurrentWriters is the group-commit durability
// contract under -race: N concurrent appenders under SyncAlways, every
// record acknowledged before the "crash" (a reopen without Close) must
// be replayed, and the committer must have actually batched — fewer
// fsync groups than acknowledged records.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	l, _, err := Open(dir, 0, SyncAlways, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Widen each commit window so appenders reliably pile up behind an
	// in-flight fsync — on tmpfs-fast storage the committer could
	// otherwise outpace them and batching would be timing-dependent.
	l.commitSyncHook = func() { time.Sleep(200 * time.Microsecond) }
	const writers = 8
	const perWriter = 50
	var mu sync.Mutex
	acked := map[uint64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*1000 + i + 1)
				rec := Record{Op: OpDelete, Epoch: id, ID: id}
				if err := l.Append(&rec); err != nil {
					t.Errorf("append %d: %v", id, err)
					return
				}
				mu.Lock()
				acked[id] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.GroupedRecords != writers*perWriter {
		t.Fatalf("group committer acknowledged %d records, want %d", st.GroupedRecords, writers*perWriter)
	}
	if st.GroupCommits == 0 || st.GroupCommits >= st.GroupedRecords {
		t.Fatalf("no batching: %d commits for %d records", st.GroupCommits, st.GroupedRecords)
	}

	// SIGKILL-style: reopen the directory without Close — whatever the
	// in-memory state, every acknowledged record must be on disk.
	_, recs, err := Open(dir, 0, SyncAlways, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for _, r := range recs {
		got[r.ID] = true
	}
	for id := range acked {
		if !got[id] {
			t.Fatalf("acknowledged record %d missing after reopen", id)
		}
	}
	l.Close()
}

// TestGroupCommitSingleWriterLatency: a lone appender's enqueue wakes
// the committer immediately — one fsync per op, no waiting for a batch
// to fill.
func TestGroupCommitSingleWriter(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	l, _, err := Open(dir, 0, SyncAlways, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.Append(&Record{Op: OpDelete, Epoch: uint64(i + 1), ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.GroupedRecords != 5 || st.GroupCommits != 5 {
		t.Fatalf("single writer: %d commits / %d records, want 5/5", st.GroupCommits, st.GroupedRecords)
	}
}

// TestSyncIntervalPolicy: the periodic-fsync half of SyncInterval —
// Sync flushes the active segment, appends keep landing around it, and
// a closed log refuses both Sync and Rotate instead of touching a
// closed file.
func TestSyncIntervalPolicy(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	l, _, err := Open(dir, 0, SyncInterval, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append(&Record{Op: OpDelete, Epoch: uint64(i + 1), ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if err := l.Sync(); err != nil {
				t.Fatalf("periodic sync: %v", err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync accepted on a closed log")
	}
	if _, err := l.Rotate(); err == nil {
		t.Fatal("Rotate accepted on a closed log")
	}
	_, recs := openT(t, dir, 0)
	if len(recs) != 20 {
		t.Fatalf("replayed %d records, want 20", len(recs))
	}
}

// TestAppendAfterCloseRejected: appends racing Close are either fully
// acknowledged or rejected — never stranded.
func TestAppendAfterCloseRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "w")
	l, _, err := Open(dir, 0, SyncAlways, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Op: OpDelete, Epoch: 1, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Op: OpDelete, Epoch: 2, ID: 2}); err == nil {
		t.Fatal("append accepted on a closed log")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// FuzzSegmentScan fuzzes the frame scanner over arbitrary segment
// bodies: it must never panic, must report a valid prefix within
// bounds, and rescanning that prefix must be a fixed point (same
// records, same end).
func FuzzSegmentScan(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	seedDir := f.TempDir()
	l, _, err := Open(filepath.Join(seedDir, "w"), 0, SyncNever, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		rec := randRecord(rng)
		if err := l.Append(&rec); err != nil {
			f.Fatal(err)
		}
	}
	seed, err := os.ReadFile(activePath(l))
	if err != nil {
		f.Fatal(err)
	}
	l.Close()
	f.Add(seed[segHeaderSize:])
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, body []byte) {
		recs, valid := scanFrames(bytes.NewReader(body), 0, int64(len(body)))
		if valid < 0 || valid > int64(len(body)) {
			t.Fatalf("valid prefix %d out of bounds [0,%d]", valid, len(body))
		}
		recs2, valid2 := scanFrames(bytes.NewReader(body[:valid]), 0, valid)
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("rescan of valid prefix moved: %d/%d records, %d/%d bytes",
				len(recs2), len(recs), valid2, valid)
		}
		for i := range recs {
			if !recordsEqual(recs[i], recs2[i]) {
				t.Fatalf("rescan record %d differs", i)
			}
		}
	})
}

// FuzzSegmentedLog drives a fuzz-chosen sequence of appends, rotations
// and deferred truncations over a tiny segment capacity, then reopens
// the directory and asserts the replay equals exactly the records the
// protocol still owes: everything appended after the last retired
// boundary, in order.
func FuzzSegmentedLog(f *testing.F) {
	f.Add([]byte{0, 0, 2, 0, 3, 0, 1})
	f.Add([]byte{2, 3, 2, 3, 0})
	f.Add(bytes.Repeat([]byte{0, 1, 2}, 20))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		dir := filepath.Join(t.TempDir(), "w")
		l, _, err := Open(dir, 0, SyncNever, Options{SegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		var all []Record
		markIdx := 0 // records appended before the latest Rotate
		dropIdx := 0 // records retired by DropSealed
		boundary := uint64(0)
		for i, op := range ops {
			switch op % 4 {
			case 0, 1:
				rec := Record{Op: OpDelete, Epoch: uint64(len(all) + 1), ID: uint64(i)}
				if err := l.Append(&rec); err != nil {
					t.Fatal(err)
				}
				all = append(all, rec)
			case 2:
				b, err := l.Rotate()
				if err != nil {
					t.Fatal(err)
				}
				if b > 0 {
					boundary, markIdx = b, len(all)
				}
			case 3:
				if err := l.DropSealed(boundary); err != nil {
					t.Fatal(err)
				}
				if boundary > 0 {
					dropIdx = markIdx
				}
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs, err := Open(dir, 0, SyncNever, Options{SegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		want := all[dropIdx:]
		if len(recs) != len(want) {
			t.Fatalf("replayed %d records, want %d (of %d appended, %d retired)",
				len(recs), len(want), len(all), dropIdx)
		}
		for i := range want {
			if !recordsEqual(want[i], recs[i]) {
				t.Fatalf("record %d differs after rotation/truncation sequence", i)
			}
		}
	})
}

// TestAppendAsync exercises the staged-append contract: records staged
// under an outer lock and awaited outside it are all durable and
// replay in staging order, the wait is idempotent, and staging
// failures surface synchronously with a nil wait.
func TestAppendAsync(t *testing.T) {
	t.Run("overlapped waits replay in order", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "w")
		l, _, err := Open(dir, 0, SyncAlways, Options{})
		if err != nil {
			t.Fatal(err)
		}
		const writers, perWriter = 8, 25
		var mu sync.Mutex // models the shard write lock: staging only
		var next atomic.Uint64
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					mu.Lock()
					rec := Record{Op: OpDelete, ID: next.Add(1)}
					wait, err := l.AppendAsync(&rec)
					mu.Unlock()
					if err != nil {
						t.Error(err)
						return
					}
					if err := wait(); err != nil {
						t.Error(err)
						return
					}
					if err := wait(); err != nil { // idempotent
						t.Errorf("second wait: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs, err := Open(dir, 0, SyncNever, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != writers*perWriter {
			t.Fatalf("replayed %d records, want %d", len(recs), writers*perWriter)
		}
		for i, rec := range recs {
			if rec.ID != uint64(i+1) {
				t.Fatalf("record %d has id %d, want %d (staging order violated)", i, rec.ID, i+1)
			}
		}
	})

	t.Run("staging failure is synchronous", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "w")
		l, _, err := Open(dir, 0, SyncAlways, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		wait, err := l.AppendAsync(&Record{Op: OpFlush})
		if err == nil {
			t.Fatal("AppendAsync on a closed log staged successfully")
		}
		if wait != nil {
			t.Fatal("staging failure returned a non-nil wait")
		}
	})
}

// benchmarkAppendAlways measures SyncAlways append throughput at 8
// concurrent writers contending on an outer mutex that models the
// engine's shard write lock. With ackInLock the whole Append — fsync
// acknowledgement included — runs under the outer lock (the engine's
// pre-AppendAsync behaviour: same-shard writers serialize through each
// other's fsyncs); without it the writers stage via AppendAsync under
// the lock and await the group commit outside it, so their fsyncs
// overlap. Ungrouped drops group commit entirely: every appender pays
// its own fsync under the lock, the pre-segmentation behaviour.
func benchmarkAppendAlways(b *testing.B, group, ackInLock bool) {
	dir := filepath.Join(b.TempDir(), "w")
	l, _, err := Open(dir, 0, SyncAlways, Options{SegmentBytes: 1 << 30, noGroupCommit: !group})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const writers = 8
	var next atomic.Int64
	var shardMu sync.Mutex
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := Record{Op: OpDelete, ID: uint64(w)}
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				rec.Epoch = uint64(i)
				if ackInLock {
					shardMu.Lock()
					err := l.Append(&rec)
					shardMu.Unlock()
					if err != nil {
						b.Error(err)
						return
					}
					continue
				}
				shardMu.Lock()
				wait, err := l.AppendAsync(&rec)
				shardMu.Unlock()
				if err != nil {
					b.Error(err)
					return
				}
				if err := wait(); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	if st := l.Stats(); st.GroupCommits > 0 {
		b.ReportMetric(float64(st.GroupedRecords)/float64(st.GroupCommits), "records/fsync")
	}
}

func BenchmarkWALAppendSyncAlways(b *testing.B)          { benchmarkAppendAlways(b, true, false) }
func BenchmarkWALAppendSyncAlwaysAckInLock(b *testing.B) { benchmarkAppendAlways(b, true, true) }
func BenchmarkWALAppendSyncAlwaysUngrouped(b *testing.B) { benchmarkAppendAlways(b, false, true) }
