// Package btree implements an in-memory B+-tree keyed by float64 with
// uint64 item identifiers as values. It is the index substrate for the
// paper's DBMS baseline (§5.1): "a popular database approach that uses a
// B+ tree to index each metadata attribute".
//
// Duplicate keys are supported (many files share an attribute value);
// each leaf slot holds the list of item ids filed under that key. Leaves
// are chained for ordered range scans.
package btree

import (
	"fmt"
	"sort"
)

// DefaultOrder is the default maximum number of keys per node.
const DefaultOrder = 64

// Tree is a B+-tree mapping float64 keys to sets of uint64 item ids.
type Tree struct {
	root   node
	order  int // max keys per node
	height int
	nKeys  int // number of distinct keys
	nItems int // number of (key,id) pairs
}

type node interface {
	// insert returns a new right sibling and its separator key when the
	// node split, else nil.
	insert(key float64, id uint64, order int) (node, float64, bool) // sibling, sepKey, addedNewKey
	// remove deletes id under key; returns whether the (key,id) pair
	// existed and whether the key vanished entirely. Underflow is
	// tolerated (lazy deletion) — fine for an index baseline that is
	// bulk-built and rarely shrunk.
	remove(key float64, id uint64) (removedPair, removedKey bool)
	firstLeaf() *leaf
	findLeaf(key float64) *leaf
}

type leaf struct {
	keys []float64
	ids  [][]uint64
	next *leaf
}

type internal struct {
	keys     []float64 // len = len(children)-1
	children []node
}

// New returns an empty tree with the given order (max keys per node,
// minimum 3).
func New(order int) *Tree {
	if order < 3 {
		panic(fmt.Sprintf("btree: order %d too small", order))
	}
	return &Tree{root: &leaf{}, order: order, height: 1}
}

// NewDefault returns an empty tree of DefaultOrder.
func NewDefault() *Tree { return New(DefaultOrder) }

// Len returns the number of (key,id) pairs stored.
func (t *Tree) Len() int { return t.nItems }

// DistinctKeys returns the number of distinct keys stored.
func (t *Tree) DistinctKeys() int { return t.nKeys }

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int { return t.height }

// Insert files id under key.
func (t *Tree) Insert(key float64, id uint64) {
	sibling, sep, added := t.root.insert(key, id, t.order)
	t.nItems++
	if added {
		t.nKeys++
	}
	if sibling != nil {
		t.root = &internal{keys: []float64{sep}, children: []node{t.root, sibling}}
		t.height++
	}
}

// Delete removes id from under key, reporting whether the pair existed.
func (t *Tree) Delete(key float64, id uint64) bool {
	removedPair, removedKey := t.root.remove(key, id)
	if removedPair {
		t.nItems--
	}
	if removedKey {
		t.nKeys--
	}
	// Collapse a root with a single child.
	for {
		in, ok := t.root.(*internal)
		if !ok || len(in.children) > 1 {
			break
		}
		t.root = in.children[0]
		t.height--
	}
	return removedPair
}

// Get returns the ids filed under exactly key (nil if none).
func (t *Tree) Get(key float64) []uint64 {
	lf := t.root.findLeaf(key)
	i := sort.SearchFloat64s(lf.keys, key)
	if i < len(lf.keys) && lf.keys[i] == key {
		out := make([]uint64, len(lf.ids[i]))
		copy(out, lf.ids[i])
		return out
	}
	return nil
}

// Range appends to dst the ids of all pairs with lo ≤ key ≤ hi and
// returns the result. The visit count (leaf slots touched) is returned
// for cost accounting.
func (t *Tree) Range(dst []uint64, lo, hi float64) ([]uint64, int) {
	visited := 0
	lf := t.root.findLeaf(lo)
	for lf != nil {
		for i, k := range lf.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return dst, visited
			}
			visited++
			dst = append(dst, lf.ids[i]...)
		}
		lf = lf.next
	}
	return dst, visited
}

// Scan walks every (key,id) pair in key order, calling fn; fn returning
// false stops the walk. It is the brute-force path of the DBMS baseline.
func (t *Tree) Scan(fn func(key float64, id uint64) bool) {
	for lf := t.root.firstLeaf(); lf != nil; lf = lf.next {
		for i, k := range lf.keys {
			for _, id := range lf.ids[i] {
				if !fn(k, id) {
					return
				}
			}
		}
	}
}

// Min returns the smallest key, or ok=false when empty.
func (t *Tree) Min() (key float64, ok bool) {
	lf := t.root.firstLeaf()
	for lf != nil {
		if len(lf.keys) > 0 {
			return lf.keys[0], true
		}
		lf = lf.next
	}
	return 0, false
}

// Max returns the largest key, or ok=false when empty.
func (t *Tree) Max() (key float64, ok bool) {
	n := t.root
	for {
		switch v := n.(type) {
		case *internal:
			n = v.children[len(v.children)-1]
		case *leaf:
			// Walk backward through a potentially empty rightmost leaf is
			// not possible without parent links; since lazy deletion can
			// empty a leaf, fall back to a scan when that happens.
			if len(v.keys) > 0 {
				return v.keys[len(v.keys)-1], true
			}
			var best float64
			found := false
			t.Scan(func(k float64, _ uint64) bool {
				best, found = k, true
				return true
			})
			return best, found
		}
	}
}

// SizeBytes estimates the in-memory footprint of the tree for the space
// accounting of Fig. 7: 8 bytes per key, 8 per id, 16 per node header,
// 8 per child pointer.
func (t *Tree) SizeBytes() int {
	size := 0
	var walk func(n node)
	walk = func(n node) {
		switch v := n.(type) {
		case *leaf:
			size += 16 + len(v.keys)*8 + 8 // header + keys + next ptr
			for _, ids := range v.ids {
				size += 24 + len(ids)*8 // slice header + ids
			}
		case *internal:
			size += 16 + len(v.keys)*8 + len(v.children)*8
			for _, c := range v.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return size
}

// --- leaf ---

func (l *leaf) findLeaf(float64) *leaf { return l }
func (l *leaf) firstLeaf() *leaf       { return l }

func (l *leaf) insert(key float64, id uint64, order int) (node, float64, bool) {
	i := sort.SearchFloat64s(l.keys, key)
	added := false
	if i < len(l.keys) && l.keys[i] == key {
		l.ids[i] = append(l.ids[i], id)
	} else {
		l.keys = append(l.keys, 0)
		copy(l.keys[i+1:], l.keys[i:])
		l.keys[i] = key
		l.ids = append(l.ids, nil)
		copy(l.ids[i+1:], l.ids[i:])
		l.ids[i] = []uint64{id}
		added = true
	}
	if len(l.keys) <= order {
		return nil, 0, added
	}
	// Split.
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([]float64(nil), l.keys[mid:]...),
		ids:  append([][]uint64(nil), l.ids[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid]
	l.ids = l.ids[:mid]
	l.next = right
	return right, right.keys[0], added
}

func (l *leaf) remove(key float64, id uint64) (bool, bool) {
	i := sort.SearchFloat64s(l.keys, key)
	if i >= len(l.keys) || l.keys[i] != key {
		return false, false
	}
	ids := l.ids[i]
	for j, v := range ids {
		if v == id {
			l.ids[i] = append(ids[:j], ids[j+1:]...)
			if len(l.ids[i]) == 0 {
				l.keys = append(l.keys[:i], l.keys[i+1:]...)
				l.ids = append(l.ids[:i], l.ids[i+1:]...)
				return true, true
			}
			return true, false
		}
	}
	return false, false
}

// --- internal ---

func (in *internal) findLeaf(key float64) *leaf {
	return in.children[in.childIndex(key)].findLeaf(key)
}

func (in *internal) firstLeaf() *leaf { return in.children[0].firstLeaf() }

func (in *internal) childIndex(key float64) int {
	// First separator strictly greater than key determines the child:
	// child i covers keys in [keys[i-1], keys[i]).
	i := sort.SearchFloat64s(in.keys, key)
	if i < len(in.keys) && in.keys[i] == key {
		i++
	}
	return i
}

func (in *internal) insert(key float64, id uint64, order int) (node, float64, bool) {
	ci := in.childIndex(key)
	sibling, sep, added := in.children[ci].insert(key, id, order)
	if sibling == nil {
		return nil, 0, added
	}
	in.keys = append(in.keys, 0)
	copy(in.keys[ci+1:], in.keys[ci:])
	in.keys[ci] = sep
	in.children = append(in.children, nil)
	copy(in.children[ci+2:], in.children[ci+1:])
	in.children[ci+1] = sibling
	if len(in.keys) <= order {
		return nil, 0, added
	}
	mid := len(in.keys) / 2
	sepUp := in.keys[mid]
	right := &internal{
		keys:     append([]float64(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid]
	in.children = in.children[:mid+1]
	return right, sepUp, added
}

func (in *internal) remove(key float64, id uint64) (bool, bool) {
	return in.children[in.childIndex(key)].remove(key, id)
}
