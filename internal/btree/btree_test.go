package btree

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := NewDefault()
	if tr.Len() != 0 || tr.DistinctKeys() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree stats wrong: %d/%d/%d", tr.Len(), tr.DistinctKeys(), tr.Height())
	}
	if ids := tr.Get(5); ids != nil {
		t.Fatalf("Get on empty = %v, want nil", ids)
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty should report !ok")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty should report !ok")
	}
}

func TestNewPanicsOnSmallOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(2) did not panic")
		}
	}()
	New(2)
}

func TestInsertGetSingle(t *testing.T) {
	tr := NewDefault()
	tr.Insert(3.5, 42)
	got := tr.Get(3.5)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("Get = %v, want [42]", got)
	}
	if tr.Len() != 1 || tr.DistinctKeys() != 1 {
		t.Fatalf("Len/DistinctKeys = %d/%d, want 1/1", tr.Len(), tr.DistinctKeys())
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := NewDefault()
	tr.Insert(7, 1)
	tr.Insert(7, 2)
	tr.Insert(7, 3)
	got := tr.Get(7)
	if len(got) != 3 {
		t.Fatalf("Get(7) = %v, want 3 ids", got)
	}
	if tr.DistinctKeys() != 1 || tr.Len() != 3 {
		t.Fatalf("DistinctKeys/Len = %d/%d, want 1/3", tr.DistinctKeys(), tr.Len())
	}
}

func TestSplitGrowth(t *testing.T) {
	tr := New(4)
	for i := 0; i < 1000; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d after 1000 keys with order 4, expected deep tree", tr.Height())
	}
	for i := 0; i < 1000; i++ {
		got := tr.Get(float64(i))
		if len(got) != 1 || got[0] != uint64(i) {
			t.Fatalf("Get(%d) = %v after splits", i, got)
		}
	}
}

func TestRangeQuery(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	ids, visited := tr.Range(nil, 10, 20)
	if len(ids) != 11 {
		t.Fatalf("Range[10,20] returned %d ids, want 11", len(ids))
	}
	if visited != 11 {
		t.Fatalf("visited = %d, want 11", visited)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for i, id := range ids {
		if id != uint64(10+i) {
			t.Fatalf("Range ids = %v", ids)
		}
	}
}

func TestRangeEmptyAndOutOfBounds(t *testing.T) {
	tr := NewDefault()
	for i := 0; i < 10; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	if ids, _ := tr.Range(nil, 100, 200); len(ids) != 0 {
		t.Fatalf("out-of-bounds range = %v, want empty", ids)
	}
	if ids, _ := tr.Range(nil, 5, 5); len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("point range = %v, want [5]", ids)
	}
}

func TestDelete(t *testing.T) {
	tr := New(4)
	for i := 0; i < 50; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	if !tr.Delete(25, 25) {
		t.Fatal("Delete(25,25) = false, want true")
	}
	if tr.Get(25) != nil {
		t.Fatal("key 25 still present after delete")
	}
	if tr.Delete(25, 25) {
		t.Fatal("second Delete(25,25) = true, want false")
	}
	if tr.Len() != 49 || tr.DistinctKeys() != 49 {
		t.Fatalf("Len/DistinctKeys = %d/%d, want 49/49", tr.Len(), tr.DistinctKeys())
	}
}

func TestDeleteOneOfDuplicates(t *testing.T) {
	tr := NewDefault()
	tr.Insert(7, 1)
	tr.Insert(7, 2)
	if !tr.Delete(7, 1) {
		t.Fatal("Delete of existing duplicate failed")
	}
	got := tr.Get(7)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Get(7) = %v, want [2]", got)
	}
	if tr.DistinctKeys() != 1 {
		t.Fatal("key should survive while one id remains")
	}
}

func TestDeleteMissingID(t *testing.T) {
	tr := NewDefault()
	tr.Insert(7, 1)
	if tr.Delete(7, 99) {
		t.Fatal("Delete of missing id reported true")
	}
	if tr.Delete(8, 1) {
		t.Fatal("Delete of missing key reported true")
	}
}

func TestScanOrdered(t *testing.T) {
	tr := New(4)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 500; i++ {
		tr.Insert(rng.Float64()*1000, uint64(i))
	}
	var keys []float64
	tr.Scan(func(k float64, _ uint64) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 500 {
		t.Fatalf("Scan visited %d pairs, want 500", len(keys))
	}
	if !sort.Float64sAreSorted(keys) {
		t.Fatal("Scan not in key order")
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := NewDefault()
	for i := 0; i < 10; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	count := 0
	tr.Scan(func(float64, uint64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Scan early stop visited %d, want 3", count)
	}
}

func TestMinMax(t *testing.T) {
	tr := New(4)
	for _, k := range []float64{5, 1, 9, 3, 7} {
		tr.Insert(k, uint64(k))
	}
	if mn, ok := tr.Min(); !ok || mn != 1 {
		t.Fatalf("Min = %v/%v, want 1/true", mn, ok)
	}
	if mx, ok := tr.Max(); !ok || mx != 9 {
		t.Fatalf("Max = %v/%v, want 9/true", mx, ok)
	}
}

func TestSizeBytesGrows(t *testing.T) {
	tr := NewDefault()
	empty := tr.SizeBytes()
	for i := 0; i < 1000; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	if tr.SizeBytes() <= empty {
		t.Fatal("SizeBytes did not grow with inserts")
	}
}

// Property: the tree agrees with a reference map across random
// insert/delete sequences.
func TestPropertyAgainstReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+99))
		tr := New(4)
		ref := map[float64]map[uint64]bool{}
		for op := 0; op < 400; op++ {
			key := float64(rng.Uint64() % 50)
			id := rng.Uint64() % 20
			if rng.Float64() < 0.7 {
				tr.Insert(key, id)
				if ref[key] == nil {
					ref[key] = map[uint64]bool{}
				}
				ref[key][id] = true // model treats duplicates as a set; see below
			} else {
				got := tr.Delete(key, id)
				want := ref[key][id]
				// The tree allows true duplicates of (key,id); the model
				// doesn't, so only verify deletions the model can decide.
				if want && !got {
					return false
				}
				if got {
					delete(ref[key], id)
					if len(ref[key]) == 0 {
						delete(ref, key)
					}
				}
			}
		}
		for key, ids := range ref {
			got := tr.Get(key)
			set := map[uint64]bool{}
			for _, id := range got {
				set[id] = true
			}
			for id := range ids {
				if !set[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Range(lo,hi) returns exactly the pairs a full scan finds in
// that window.
func TestPropertyRangeMatchesScan(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^7))
		tr := New(5)
		for i := 0; i < 300; i++ {
			tr.Insert(float64(rng.Uint64()%100), uint64(i))
		}
		lo := float64(rng.Uint64() % 100)
		hi := lo + float64(rng.Uint64()%40)
		got, _ := tr.Range(nil, lo, hi)
		var want []uint64
		tr.Scan(func(k float64, id uint64) bool {
			if k >= lo && k <= hi {
				want = append(want, id)
			}
			return true
		})
		if len(got) != len(want) {
			return false
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := NewDefault()
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64()*1e6, uint64(i))
	}
}

func BenchmarkRange1000(b *testing.B) {
	tr := NewDefault()
	for i := 0; i < 100000; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	buf := make([]uint64, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = tr.Range(buf[:0], 5000, 6000)
	}
}
