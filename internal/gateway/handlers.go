package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/wire"
)

// routes installs the single-store wire API over the federation.
func (g *Gateway) routes() {
	if g.metrics != nil {
		g.mux.HandleFunc("GET /v1/metrics", g.handleMetrics)
	}
	g.mux.HandleFunc("POST /v1/query", g.admitted("query", g.handleQuery))
	g.mux.HandleFunc("POST /v1/query/point", g.admitted("point", g.handlePoint))
	g.mux.HandleFunc("POST /v1/query/range", g.admitted("range", g.handleRange))
	g.mux.HandleFunc("POST /v1/query/topk", g.admitted("topk", g.handleTopK))
	g.mux.HandleFunc("POST /v1/insert", g.admitted("insert", g.handleInsert))
	g.mux.HandleFunc("POST /v1/delete", g.admitted("delete", g.handleDelete))
	g.mux.HandleFunc("POST /v1/modify", g.admitted("modify", g.handleModify))
	g.mux.HandleFunc("POST /v1/flush", g.admitted("flush", g.handleFlush))
	g.mux.HandleFunc("GET /v1/stats", g.admitted("stats", g.handleStats))
	g.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// The gateway is healthy while it can answer anything at all;
		// with every backend down it fails its own probe, so a load
		// balancer in front of several gateways routes around it.
		if len(g.healthy()) == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ok": false})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
}

// ServeHTTP makes the gateway an http.Handler over its §5 mux.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// errBusy is returned by admission when the wait queue is full.
var errBusy = errors.New("gateway at capacity")

// errIndeterminate marks a mutation whose target id was not found on
// any healthy backend while part of the membership was unreachable —
// the id may live on a down member, so "not found" would be a lie.
var errIndeterminate = errors.New("gateway: id not found on healthy backends and part of the membership is down")

// admit blocks until a worker slot frees, the request is cancelled, or
// the wait queue overflows. On success the caller must invoke release.
func (g *Gateway) admit(r *http.Request) (release func(), err error) {
	if g.inflight.Add(1) > int64(g.opts.Workers+g.opts.MaxQueue) {
		g.inflight.Add(-1)
		return nil, errBusy
	}
	select {
	case g.sem <- struct{}{}:
		return func() { <-g.sem; g.inflight.Add(-1) }, nil
	case <-r.Context().Done():
		g.inflight.Add(-1)
		return nil, r.Context().Err()
	}
}

// admitted wraps a handler with admission control, instrumentation and
// error mapping. The gateway's mapping adds two federation cases to
// the store's: an unservable federation answers 503, and a backend
// failure answers 502 — never a bare 500, which would read as a
// gateway bug instead of a membership problem.
func (g *Gateway) admitted(endpoint string, h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g.requests.Add(1)
		g.metrics.observeEndpoint(endpoint)
		start := time.Now()
		release, err := g.admit(r)
		if err != nil {
			g.rejected.Add(1)
			if errors.Is(err, errBusy) {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, err)
			} else {
				// Client went away while queued.
				writeError(w, 499, err)
			}
			return
		}
		wait := time.Since(start)
		g.metrics.observeAdmissionWait(wait)
		if r.Header.Get(server.TraceHeader) != "" {
			var ctx context.Context
			var tr *obs.QueryTrace
			ctx, tr = obs.WithTrace(r.Context())
			tr.AddPhase("admission_wait", wait)
			r = r.WithContext(ctx)
		}
		defer func() {
			release()
			g.metrics.observeDuration(endpoint, time.Since(start))
		}()
		if err := h(w, r); err != nil {
			var bad badRequestError
			var se *client.StatusError
			switch {
			case errors.Is(err, errAllDown), errors.Is(err, errIndeterminate):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, err)
			case errors.As(err, &bad) || isClientError(err):
				writeError(w, http.StatusBadRequest, err)
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				// Client went away mid-request.
				writeError(w, 499, err)
			case errors.As(err, &se):
				// A backend answered with server-side pressure or failure.
				writeError(w, http.StatusBadGateway, err)
			default:
				// Transport-level failure toward a backend.
				writeError(w, http.StatusBadGateway, err)
			}
		}
	}
}

// maxBodyBytes bounds request bodies (batch inserts dominate sizing).
const maxBodyBytes = 16 << 20

// maxBatchQueries bounds one /v1/query batch, matching the store.
const maxBatchQueries = 256

func decode(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err := dec.Decode(into); err != nil {
		return badRequestf("decoding request: %v", err)
	}
	return nil
}

// decodeQueryRequest decodes a /v1/query body in whichever codec the
// request's Content-Type names, mirroring the single store's server:
// the binary frame format when it is wire.ContentType, JSON otherwise.
func decodeQueryRequest(r *http.Request, req *server.QueryRequest) error {
	if !wire.IsBinary(r.Header.Get("Content-Type")) {
		return decode(r, req)
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		return badRequestf("reading request: %v", err)
	}
	decoded, err := wire.DecodeRequest(body)
	if err != nil {
		return badRequestf("decoding request: %v", err)
	}
	*req = *decoded
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, server.ErrorResponse{Error: err.Error()})
}

// handleQuery serves the unified POST /v1/query endpoint: one query
// inline, or a batch under "queries", each member fanning out to its
// own backend set concurrently under the one admission ticket.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) error {
	tr := obs.TraceFrom(r.Context())
	traced := tr != nil
	decodeStart := time.Now()
	var req server.QueryRequest
	if err := decodeQueryRequest(r, &req); err != nil {
		return err
	}
	tr.AddPhase("decode", time.Since(decodeStart))
	if len(req.Queries) == 0 {
		q, err := req.WireQuery.Query()
		if err != nil {
			return badRequestf("%v", err)
		}
		execStart := time.Now()
		resp, backends, err := g.execQuery(r.Context(), q, traced)
		if err != nil {
			return err
		}
		tr.AddPhase("execute", time.Since(execStart))
		g.writeQueryResponse(w, r, resp, backends)
		return nil
	}

	if len(req.Queries) > maxBatchQueries {
		return badRequestf("batch of %d queries exceeds the %d limit", len(req.Queries), maxBatchQueries)
	}
	queries := make([]smartstore.Query, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := wq.Query()
		if err != nil {
			return badRequestf("queries[%d]: %v", i, err)
		}
		queries[i] = q
	}
	results := make([]server.QueryResponse, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q smartstore.Query) {
			defer wg.Done()
			resp, _, err := g.execQuery(r.Context(), q, false)
			if err != nil {
				resp = server.QueryResponse{Kind: q.Kind.String(), Error: err.Error()}
			}
			results[i] = resp
		}(i, q)
	}
	wg.Wait()
	writeBatchResponse(w, r, server.BatchQueryResponse{Results: results})
	return nil
}

// writeBatchResponse writes a batch answer in whichever codec the
// request's Accept header negotiated.
func writeBatchResponse(w http.ResponseWriter, r *http.Request, batch server.BatchQueryResponse) {
	if !wire.Accepts(r.Header.Get("Accept")) {
		writeJSON(w, http.StatusOK, batch)
		return
	}
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	wire.EncodeBatchResponse(w, &batch)
}

// The legacy one-endpoint-per-kind shims mirror the store's.

func (g *Gateway) handlePoint(w http.ResponseWriter, r *http.Request) error {
	var req server.PointRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	return g.serveShim(w, r, server.WireQuery{Kind: "point", Path: req.Path})
}

func (g *Gateway) handleRange(w http.ResponseWriter, r *http.Request) error {
	var req server.RangeRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	return g.serveShim(w, r, server.WireQuery{Kind: "range", Attrs: req.Attrs, Lo: req.Lo, Hi: req.Hi})
}

func (g *Gateway) handleTopK(w http.ResponseWriter, r *http.Request) error {
	var req server.TopKRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	return g.serveShim(w, r, server.WireQuery{Kind: "topk", Attrs: req.Attrs, Point: req.Point, K: req.K})
}

func (g *Gateway) serveShim(w http.ResponseWriter, r *http.Request, wq server.WireQuery) error {
	q, err := wq.Query()
	if err != nil {
		return badRequestf("%v", err)
	}
	tr := obs.TraceFrom(r.Context())
	execStart := time.Now()
	resp, backends, err := g.execQuery(r.Context(), q, tr != nil)
	if err != nil {
		return err
	}
	tr.AddPhase("execute", time.Since(execStart))
	g.writeQueryResponse(w, r, resp, backends)
	return nil
}

// writeQueryResponse attaches the gateway-level trace (phases plus the
// per-backend breakdown, each nesting the backend's own trace) when
// the request carried the trace header, and writes the response in
// whichever codec the Accept header negotiated — the same streamed
// binary frame sequence the single store emits.
func (g *Gateway) writeQueryResponse(w http.ResponseWriter, r *http.Request, resp server.QueryResponse, backends []server.BackendTraceWire) {
	tr := obs.TraceFrom(r.Context())
	traced := tr != nil && r.Header.Get(server.TraceHeader) != ""
	if wire.Accepts(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", wire.ContentType)
		w.WriteHeader(http.StatusOK)
		enc := wire.NewResponseEncoder(w)
		encStart := time.Now()
		enc.WriteHeader(resp.Kind)
		enc.WriteIDs(resp.IDs, resp.Dists)
		enc.WriteRecords(resp.Records)
		if traced {
			tr.AddPhase("encode", time.Since(encStart))
			resp.Trace = gatewayTrace(tr, backends)
		}
		enc.WriteTrailer(&resp)
		return
	}
	if traced {
		encStart := time.Now()
		if _, err := json.Marshal(resp); err == nil {
			tr.AddPhase("encode", time.Since(encStart))
		}
		resp.Trace = gatewayTrace(tr, backends)
	}
	writeJSON(w, http.StatusOK, resp)
}

// gatewayTrace shapes the gateway's trace for the wire: phases in
// recording order with a derived "merge" phase after "execute" (the
// execute wall time minus the slowest contributing backend — the
// fan-out's collect-and-merge overhead), and the backend breakdown
// alongside.
func gatewayTrace(tr *obs.QueryTrace, backends []server.BackendTraceWire) *server.TraceWire {
	phases := tr.Phases()
	total := time.Since(tr.Start)
	for _, p := range phases {
		if p.Name == "admission_wait" {
			total += p.Dur
		}
	}
	var slowest float64
	for _, b := range backends {
		if !b.Down && b.Ms > slowest {
			slowest = b.Ms
		}
	}
	out := &server.TraceWire{TotalMs: ms(total), Backends: backends}
	for _, p := range phases {
		out.Phases = append(out.Phases, server.PhaseWire{Name: p.Name, Ms: ms(p.Dur)})
		if p.Name == "execute" && len(backends) > 0 {
			m := ms(p.Dur) - slowest
			if m < 0 {
				m = 0
			}
			out.Phases = append(out.Phases, server.PhaseWire{Name: "merge", Ms: m})
		}
	}
	return out
}

// handleInsert validates and allocates ids exactly like the store's
// server, then routes each record to the nearest healthy centroid and
// fans the per-target batches out concurrently. The id→backend index
// learns every placed record, so later deletes and modifies go direct.
func (g *Gateway) handleInsert(w http.ResponseWriter, r *http.Request) error {
	var req server.InsertRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if len(req.Files) == 0 {
		return badRequestf("insert: empty batch")
	}
	healthy := g.healthy()
	if len(healthy) == 0 {
		return errAllDown
	}
	ids := make([]uint64, len(req.Files))
	groups := make(map[*backend][]server.FileRecord)
	g.insMu.Lock()
	for i, rec := range req.Files {
		if _, err := rec.File(); err != nil {
			g.insMu.Unlock()
			return badRequestf("insert[%d]: %v", i, err)
		}
		if rec.ID == 0 {
			g.nextID++
			rec.ID = g.nextID
		} else if rec.ID > g.nextID {
			// Keep the allocator above explicit ids so later
			// auto-assigned ones cannot collide with them.
			g.nextID = rec.ID
		}
		ids[i] = rec.ID
		b := g.placeInsert(rec, healthy)
		groups[b] = append(groups[b], rec)
	}
	g.insMu.Unlock()

	type placed struct {
		b    *backend
		resp *server.InsertResponse
		err  error
	}
	results := make([]placed, 0, len(groups))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for b, recs := range groups {
		wg.Add(1)
		go func(b *backend, recs []server.FileRecord) {
			defer wg.Done()
			resp, err := b.client().InsertRecords(r.Context(), recs)
			if err == nil {
				// Learn placements as soon as they are durable on the
				// backend — even if a sibling group fails, these landed.
				for _, rec := range recs {
					g.learn(rec.ID, b.idx)
				}
			}
			mu.Lock()
			results = append(results, placed{b: b, resp: resp, err: err})
			mu.Unlock()
		}(b, recs)
	}
	wg.Wait()

	out := server.InsertResponse{Inserted: len(req.Files), IDs: ids}
	contributing := 0
	for _, p := range results {
		if p.err != nil {
			if !isClientError(p.err) {
				g.markDown(p.b)
			}
			// A failed group means the batch is partially applied; the
			// 502 tells the client which member to reconcile against.
			return badGatewayf(p.err, "insert: backend %s failed", p.b.name)
		}
		out.Epoch += p.resp.Epoch
		composeReport(&out.Report, p.resp.Report, contributing == 0)
		contributing++
	}
	if contributing > 1 {
		out.Report.Hops += contributing - 1
	}
	writeJSON(w, http.StatusOK, out)
	return nil
}

// badGatewayf keeps the backend's error in the chain so the admitted
// wrapper still classifies it, while prefixing the gateway's context.
func badGatewayf(err error, format string, args ...any) error {
	return &wrappedError{msg: badRequestf(format, args...).Error(), err: err}
}

type wrappedError struct {
	msg string
	err error
}

func (e *wrappedError) Error() string { return e.msg + ": " + e.err.Error() }
func (e *wrappedError) Unwrap() error { return e.err }

// composeReport folds one backend's virtual-time report into the
// composed one: wall times max (members ran in parallel), counters sum.
func composeReport(into *server.Report, r server.Report, first bool) {
	if first {
		*into = r
		return
	}
	if r.LatencySec > into.LatencySec {
		into.LatencySec = r.LatencySec
	}
	if r.VersionLatencySec > into.VersionLatencySec {
		into.VersionLatencySec = r.VersionLatencySec
	}
	into.Messages += r.Messages
	into.Hops += r.Hops
	into.UnitsSearched += r.UnitsSearched
	into.VersionChecked += r.VersionChecked
}

// mutate routes one id-addressed mutation: direct to the learned owner
// when known, otherwise fanned out to every healthy backend (at most
// one holds the id — id spaces are disjoint). A not-found verdict with
// part of the membership down is indeterminate, not authoritative.
func (g *Gateway) mutate(ctx context.Context, id uint64, op func(ctx context.Context, b *backend) (*server.MutateResponse, bool, error)) (server.MutateResponse, error) {
	if b, ok := g.owner(id); ok && b.up.Load() {
		resp, found, err := op(ctx, b)
		if err == nil {
			if !found {
				// Stale learned placement; forget it and fall through to
				// the fan-out below.
				g.learn(id, -1)
			} else {
				return *resp, nil
			}
		} else if isClientError(err) {
			return server.MutateResponse{}, err
		} else {
			g.markDown(b)
			return server.MutateResponse{}, badGatewayf(err, "mutation: backend %s failed", b.name)
		}
	}

	healthy := g.healthy()
	if len(healthy) == 0 {
		return server.MutateResponse{}, errAllDown
	}
	type verdict struct {
		b     *backend
		resp  *server.MutateResponse
		found bool
		err   error
	}
	verdicts := make([]verdict, len(healthy))
	var wg sync.WaitGroup
	for i, b := range healthy {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			resp, found, err := op(ctx, b)
			verdicts[i] = verdict{b: b, resp: resp, found: found, err: err}
		}(i, b)
	}
	wg.Wait()

	failed := 0
	var out server.MutateResponse
	contributing := 0
	for _, v := range verdicts {
		switch {
		case v.err == nil && v.found:
			out.Found = true
			out.Report = v.resp.Report
			g.learn(id, v.b.idx)
		case v.err == nil:
			// Not found here; the epoch still composes below.
		case isClientError(v.err):
			return server.MutateResponse{}, v.err
		default:
			failed++
			g.markDown(v.b)
			continue
		}
		out.Epoch += v.resp.Epoch
		contributing++
	}
	if !out.Found && (failed > 0 || len(healthy) < len(g.backends)) {
		return server.MutateResponse{}, errIndeterminate
	}
	if contributing == 0 {
		return server.MutateResponse{}, errAllDown
	}
	return out, nil
}

func (g *Gateway) handleDelete(w http.ResponseWriter, r *http.Request) error {
	var req server.DeleteRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if req.ID == 0 {
		return badRequestf("delete: missing id")
	}
	resp, err := g.mutate(r.Context(), req.ID, func(ctx context.Context, b *backend) (*server.MutateResponse, bool, error) {
		mr, err := b.client().DeleteCtx(ctx, req.ID)
		if err != nil {
			return nil, false, err
		}
		return mr, mr.Found, nil
	})
	if err != nil {
		return err
	}
	if resp.Found {
		g.learn(req.ID, -1)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (g *Gateway) handleModify(w http.ResponseWriter, r *http.Request) error {
	var req server.ModifyRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if req.File.ID == 0 {
		return badRequestf("modify: missing id")
	}
	// The wire record forwards as-is: the owning backend applies the
	// partial-attribute merge against its stored vector.
	resp, err := g.mutate(r.Context(), req.File.ID, func(ctx context.Context, b *backend) (*server.MutateResponse, bool, error) {
		mr, err := b.client().ModifyRecord(ctx, req.File)
		if err != nil {
			return nil, false, err
		}
		return mr, mr.Found, nil
	})
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (g *Gateway) handleFlush(w http.ResponseWriter, r *http.Request) error {
	healthy := g.healthy()
	if len(healthy) == 0 {
		return errAllDown
	}
	resps := make([]*server.FlushResponse, len(healthy))
	errs := make([]error, len(healthy))
	var wg sync.WaitGroup
	for i, b := range healthy {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			resps[i], errs[i] = b.client().FlushCtx(r.Context())
		}(i, b)
	}
	wg.Wait()
	var out server.FlushResponse
	for i, err := range errs {
		if err != nil {
			if !isClientError(err) {
				g.markDown(healthy[i])
			}
			return badGatewayf(err, "flush: backend %s failed", healthy[i].name)
		}
		out.Epoch += resps[i].Epoch
	}
	writeJSON(w, http.StatusOK, out)
	return nil
}

// handleStats aggregates the healthy backends' store stats (sums for
// sizes and the composed epoch, max for heights) and adds the gateway's
// own membership and serving sections. Down members appear in the
// membership rows with zeroed stats — the gap is visible, not elided.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) error {
	stats := make([]*server.StatsResponse, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		if !b.up.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			st, err := b.client().Stats()
			if err != nil {
				g.markDown(b)
				return
			}
			stats[i] = st
		}(i, b)
	}
	wg.Wait()

	out := server.StatsResponse{
		Gateway: &server.GatewayWire{},
		Build: server.BuildWire{
			GoVersion: g.build.GoVersion,
			Module:    g.build.Module,
			Version:   g.build.Version,
			Revision:  g.build.Revision,
			Dirty:     g.build.Dirty,
		},
		Server: server.ServerStats{
			UptimeSec: time.Since(g.start).Seconds(),
			Requests:  g.requests.Load(),
			Rejected:  g.rejected.Load(),
			Workers:   g.opts.Workers,
			MaxQueue:  g.opts.MaxQueue,
		},
	}
	for i, b := range g.backends {
		row := server.BackendWire{
			Backend:    b.name,
			Healthy:    stats[i] != nil,
			Active:     b.activeAddr(),
			FailedOver: b.failedOver.Load(),
		}
		if st := stats[i]; st != nil {
			row.Files = st.Store.Files
			row.Epoch = st.Store.Epoch
			out.Gateway.Healthy++
			out.Store.Units += st.Store.Units
			out.Store.IndexUnits += st.Store.IndexUnits
			out.Store.Files += st.Store.Files
			out.Store.Trees += st.Store.Trees
			out.Store.IndexBytesTotal += st.Store.IndexBytesTotal
			out.Store.Epoch += st.Store.Epoch
			out.Store.Shards += st.Store.Shards
			if st.Store.TreeHeight > out.Store.TreeHeight {
				out.Store.TreeHeight = st.Store.TreeHeight
			}
			if st.Store.IndexBytesPerNode > out.Store.IndexBytesPerNode {
				out.Store.IndexBytesPerNode = st.Store.IndexBytesPerNode
			}
		}
		out.Gateway.Backends = append(out.Gateway.Backends, row)
	}
	writeJSON(w, http.StatusOK, out)
	return nil
}
