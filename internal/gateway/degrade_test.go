package gateway

import (
	"context"
	"errors"
	"strings"
	"testing"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/obs"
)

// TestGatewayDegradesOnBackendDown is the partial-result contract: a
// down backend costs coverage, never availability. The answer is the
// healthy members' union, flagged Partial, with status 200.
func TestGatewayDegradesOnBackendDown(t *testing.T) {
	fed := buildFederation(t, 900, 3)
	ctx := context.Background()

	// Ground truth and the down member's id set, captured while
	// everything is still up.
	full, err := fed.single.Query(ctx, smartstore.NewRangeQuery(queryAttrs(),
		[]float64{0, 0, 0}, []float64{9e15, 9e15, 9e15}))
	if err != nil {
		t.Fatal(err)
	}
	lost := toSet(nil)
	for _, f := range fed.perNode[1] {
		lost[f.ID] = true
	}

	// Kill backend 1 the hard way: its listener closes, connections
	// refuse. The first fanned-out query eats the failure, degrades,
	// and marks the member down.
	fed.backends[1].Close()
	got, err := fed.gate.Query(ctx, smartstore.NewRangeQuery(queryAttrs(),
		[]float64{0, 0, 0}, []float64{9e15, 9e15, 9e15}))
	if err != nil {
		t.Fatalf("degraded query failed instead of answering partial: %v", err)
	}
	if !got.Partial {
		t.Fatal("degraded answer not flagged partial")
	}
	if len(got.IDs) == 0 {
		t.Fatal("degraded answer empty")
	}
	fullSet := toSet(full.IDs)
	for _, id := range got.IDs {
		if !fullSet[id] {
			t.Fatalf("degraded answer invented id %d", id)
		}
		if lost[id] {
			t.Fatalf("degraded answer contains id %d from the down backend", id)
		}
	}
	if want := len(full.IDs) - len(fed.perNode[1]); len(got.IDs) != want {
		t.Fatalf("degraded answer has %d ids, healthy members hold %d", len(got.IDs), want)
	}

	// The member is now marked down: the next query skips it outright
	// and still flags the gap.
	got, err = fed.gate.Query(ctx, smartstore.NewTopKQuery(queryAttrs(), topkPoints()[0], 10))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Partial {
		t.Fatal("second degraded answer not flagged partial")
	}
	for _, id := range got.IDs {
		if lost[id] {
			t.Fatalf("down backend's id %d in a post-markdown answer", id)
		}
	}

	// Mutating an id that lived on the down member is indeterminate:
	// the healthy members answer not-found, so the gateway must refuse
	// (503), not report a confident miss.
	var downID uint64
	for id := range lost {
		downID = id
		break
	}
	_, err = fed.gate.Delete(downID)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != 503 {
		t.Fatalf("indeterminate delete answered %v, want a 503", err)
	}

	// The outage is visible in the gateway's own exposition.
	text, err := fed.gate.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("gateway exposition does not parse: %v", err)
	}
	partial := obs.FindFamily(fams, "smartgate_partial_responses_total")
	if partial == nil || len(partial.Samples) == 0 || partial.Samples[0].Value < 2 {
		t.Fatalf("partial_responses_total missing or low: %+v", partial)
	}
	up := obs.FindFamily(fams, "smartgate_backend_up")
	if up == nil {
		t.Fatal("backend_up family missing")
	}
	downSeen := 0
	for _, s := range up.Samples {
		if s.Value == 0 {
			downSeen++
		}
	}
	if downSeen != 1 {
		t.Fatalf("%d backends read down in backend_up, want 1", downSeen)
	}

	// With every backend gone the gateway finally refuses — 503, not
	// 500 — and its own health probe fails.
	fed.backends[0].Close()
	fed.backends[2].Close()
	// Two more queries: the first marks the remaining members down.
	fed.gate.Query(ctx, smartstore.NewPointQuery("/x"))
	_, err = fed.gate.Query(ctx, smartstore.NewPointQuery("/x"))
	if !errors.As(err, &se) || se.Code != 503 {
		t.Fatalf("all-down query answered %v, want a 503", err)
	}
	if fed.gate.Healthy() {
		t.Fatal("gateway reports healthy with every backend down")
	}
}
