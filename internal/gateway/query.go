package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/merge"
	"repro/internal/server"
)

// errAllDown is returned when no backend can serve a request; the
// handler maps it to 503 so clients know to retry, not to a 500.
var errAllDown = errors.New("gateway: no healthy backends")

// backendAnswer is one backend's contribution to a fanned-out query.
type backendAnswer struct {
	b    *backend
	resp *server.QueryResponse
	err  error
	dur  time.Duration
}

// isClientError reports a 4xx reply — the query itself is at fault, so
// the whole gateway request fails instead of degrading.
func isClientError(err error) bool {
	var se *client.StatusError
	return errors.As(err, &se) && se.Code >= 400 && se.Code < 500
}

// execQuery runs one validated query across the federation: fan out to
// the relevant healthy backends, merge exactly, degrade gracefully.
// The returned backend traces are non-nil only when traced.
func (g *Gateway) execQuery(ctx context.Context, q smartstore.Query, traced bool) (server.QueryResponse, []server.BackendTraceWire, error) {
	healthy := g.healthy()
	down := len(g.backends) - len(healthy)
	if g.metrics != nil && down > 0 {
		g.metrics.backendsDown.Add(uint64(down))
	}
	if len(healthy) == 0 {
		return server.QueryResponse{}, nil, errAllDown
	}

	// Off-line top-k routes to the backends whose placement centroids
	// are most correlated with the query point — the network-level
	// analogue of the engine's shard routing. Every other path is a
	// full healthy fan-out (exactness needs every member's answer).
	targets := healthy
	if q.Kind == smartstore.KindTopK && q.Options.Mode == smartstore.ModeOffline && len(healthy) > 1 {
		targets = g.nearestBackends(healthy, q.Attrs, q.Point, offlineMaxBackends(len(healthy)))
	}
	if g.metrics != nil {
		g.metrics.backendsVisited.Add(uint64(len(targets)))
		g.metrics.backendsPruned.Add(uint64(len(healthy) - len(targets)))
	}

	// The forwarded form: top-k needs every backend's local top k with
	// true distances — a per-backend limit could cut candidates the
	// global merge keeps, so the limit is applied after the merge.
	fq := q
	if q.Kind == smartstore.KindTopK {
		fq.Options.IncludeDists = true
		fq.Options.Limit = 0
	}

	answers := make([]backendAnswer, len(targets))
	var wg sync.WaitGroup
	for i, b := range targets {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			cl := b.client()
			if traced {
				cl = b.tclient()
			}
			start := time.Now()
			resp, err := cl.Query(ctx, fq)
			answers[i] = backendAnswer{b: b, resp: resp, err: err, dur: time.Since(start)}
			if g.metrics != nil {
				g.metrics.observeBackendQuery(b.name, answers[i].dur)
			}
		}(i, b)
	}
	wg.Wait()

	var ok []backendAnswer
	failed := 0
	for _, a := range answers {
		switch {
		case a.err == nil:
			ok = append(ok, a)
		case isClientError(a.err):
			// The backend rejected the query itself — our forwarding or
			// the client's query is malformed; degradation doesn't apply.
			return server.QueryResponse{}, nil, a.err
		default:
			// Transport failure or backend pressure after retries: treat
			// the member as down for subsequent fan-outs and degrade.
			failed++
			g.markDown(a.b)
			if g.metrics != nil {
				g.metrics.backendsDown.Add(1)
			}
		}
	}
	if len(ok) == 0 {
		return server.QueryResponse{}, nil, errAllDown
	}

	resp := g.mergeAnswers(q, ok)
	resp.Partial = down > 0 || failed > 0
	if resp.Partial && g.metrics != nil {
		g.metrics.partialResponses.Inc()
	}

	var traces []server.BackendTraceWire
	if traced {
		traces = make([]server.BackendTraceWire, 0, len(g.backends))
		for _, a := range answers {
			bt := server.BackendTraceWire{Backend: a.b.name, Ms: ms(a.dur), Down: a.err != nil && !isClientError(a.err)}
			if a.resp != nil {
				bt.Trace = a.resp.Trace
			}
			traces = append(traces, bt)
		}
		for _, b := range g.backends {
			if !containsBackend(answers, b) {
				traces = append(traces, server.BackendTraceWire{Backend: b.name, Down: true})
			}
		}
	}
	return resp, traces, nil
}

func containsBackend(answers []backendAnswer, b *backend) bool {
	for _, a := range answers {
		if a.b == b {
			return true
		}
	}
	return false
}

// mergeAnswers folds the per-backend answers with the shared exact
// rules: union for point/range, (dist,id)-ordered bounded-heap top-k.
func (g *Gateway) mergeAnswers(q smartstore.Query, ok []backendAnswer) server.QueryResponse {
	out := server.QueryResponse{Kind: q.Kind.String()}

	var ids []uint64
	var dists []float64
	switch q.Kind {
	case smartstore.KindTopK:
		lists := make([][]merge.Cand, len(ok))
		for i, a := range ok {
			l := make([]merge.Cand, len(a.resp.IDs))
			for j, id := range a.resp.IDs {
				var d float64
				if j < len(a.resp.Dists) {
					d = a.resp.Dists[j]
				}
				l[j] = merge.Cand{ID: id, Dist: d}
			}
			lists[i] = l
		}
		cands := merge.TopK(lists, q.K)
		ids = make([]uint64, len(cands))
		dists = make([]float64, len(cands))
		for i, c := range cands {
			ids[i] = c.ID
			dists[i] = c.Dist
		}
	default:
		lists := make([][]uint64, len(ok))
		for i, a := range ok {
			lists[i] = a.resp.IDs
		}
		var dups int
		ids, dups = merge.Union(lists)
		if dups > 0 && g.metrics != nil {
			// Two backends claiming one id means the id spaces overlap —
			// a misprovisioned federation; surfaced, not double-counted.
			g.metrics.duplicateIDs.Add(uint64(dups))
		}
		for _, a := range ok {
			if a.resp.Truncated {
				out.Truncated = true
			}
		}
	}

	if q.Options.Limit > 0 && len(ids) > q.Options.Limit {
		ids = ids[:q.Options.Limit]
		if dists != nil {
			dists = dists[:q.Options.Limit]
		}
		out.Truncated = true
	}
	out.IDs = ids
	out.Count = len(ids)
	if q.Options.IncludeDists && q.Kind == smartstore.KindTopK {
		out.Dists = dists
	}

	if q.Options.IncludeRecords {
		recs := make(map[uint64]server.FileRecord)
		for _, a := range ok {
			for _, r := range a.resp.Records {
				if _, dup := recs[r.ID]; !dup {
					recs[r.ID] = r
				}
			}
		}
		out.Records = make([]server.FileRecord, 0, len(ids))
		for _, id := range ids {
			if r, found := recs[id]; found {
				out.Records = append(out.Records, r)
			}
		}
	}

	// Reports compose across backends like across shards: wall time is
	// the slowest member (they ran in parallel), work and traffic sum,
	// and crossing into each additional contributing member adds a hop.
	contributing := 0
	for i, a := range ok {
		r := a.resp.Report
		if len(a.resp.IDs) > 0 {
			contributing++
		}
		if i == 0 {
			out.Report = r
			continue
		}
		if r.LatencySec > out.Report.LatencySec {
			out.Report.LatencySec = r.LatencySec
		}
		if r.VersionLatencySec > out.Report.VersionLatencySec {
			out.Report.VersionLatencySec = r.VersionLatencySec
		}
		out.Report.Messages += r.Messages
		out.Report.Hops += r.Hops
		out.Report.UnitsSearched += r.UnitsSearched
		out.Report.VersionChecked += r.VersionChecked
	}
	if contributing > 1 {
		out.Report.Hops += contributing - 1
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// badRequestf is a gateway-side 400 with formatted message.
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return badRequestError{msg: fmt.Sprintf(format, args...)}
}
