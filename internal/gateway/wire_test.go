package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/server"
	"repro/internal/wire"
)

// postGateWire posts one /v1/query to the gateway in the chosen
// codecs and returns status, content type and raw body.
func postGateWire(t *testing.T, url string, req *server.QueryRequest, reqBinary, respBinary bool) (int, string, []byte) {
	t.Helper()
	var body []byte
	var err error
	contentType := "application/json"
	if reqBinary {
		body, err = wire.EncodeRequest(req)
		contentType = wire.ContentType
	} else {
		body, err = json.Marshal(req)
	}
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", contentType)
	if respBinary {
		hreq.Header.Set("Accept", wire.ContentType)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), raw
}

// TestGatewayCodecEquivalence: a gateway-merged answer — fanned out
// across backends over the binary codec — decodes to the identical
// value through every request/response codec combination.
func TestGatewayCodecEquivalence(t *testing.T) {
	fed := buildFederation(t, 600, 3)
	f := fed.files[11]
	shapes := map[string]*server.QueryRequest{
		"point": {WireQuery: server.WireQuery{Kind: "point", Path: f.Path}},
		"range": {WireQuery: server.WireQuery{
			Kind:  "range",
			Attrs: []string{"mtime", "read_bytes", "write_bytes"},
			Lo:    []float64{0, 0, 0}, Hi: []float64{1e9, 1e12, 1e12}, Limit: 20}},
		"topk": {WireQuery: server.WireQuery{
			Kind: "topk", Attrs: []string{"mtime"}, Point: []float64{f.Attrs[0]},
			K: 9, IncludeDists: true, IncludeRecords: true}},
		"batch": {Queries: []server.WireQuery{
			{Kind: "point", Path: f.Path},
			{Kind: "topk", Attrs: []string{"mtime"}, Point: []float64{0}, K: 4},
		}},
	}
	scrub := func(v any) {
		zero := func(r *server.QueryResponse) {
			r.Report.LatencySec = 0
			r.Report.VersionLatencySec = 0
		}
		switch r := v.(type) {
		case *server.QueryResponse:
			zero(r)
		case *server.BatchQueryResponse:
			for i := range r.Results {
				zero(&r.Results[i])
			}
		}
	}
	for name, req := range shapes {
		t.Run(name, func(t *testing.T) {
			batch := len(req.Queries) > 0
			var ref any
			for i, combo := range []struct{ reqBin, respBin bool }{
				{false, false}, {true, false}, {false, true}, {true, true},
			} {
				code, ct, raw := postGateWire(t, fed.gateURL, req, combo.reqBin, combo.respBin)
				if code != 200 {
					t.Fatalf("combo %d: status %d: %s", i, code, raw)
				}
				if combo.respBin != wire.IsBinary(ct) {
					t.Fatalf("combo %d: negotiated %q", i, ct)
				}
				var got any
				if wire.IsBinary(ct) {
					var err error
					if batch {
						got, err = wire.DecodeBatchResponseBytes(raw)
					} else {
						got, err = wire.DecodeResponseBytes(raw)
					}
					if err != nil {
						t.Fatalf("combo %d: binary decode: %v", i, err)
					}
				} else if batch {
					out := &server.BatchQueryResponse{}
					if err := json.Unmarshal(raw, out); err != nil {
						t.Fatal(err)
					}
					got = out
				} else {
					out := &server.QueryResponse{}
					if err := json.Unmarshal(raw, out); err != nil {
						t.Fatal(err)
					}
					got = out
				}
				scrub(got)
				if i == 0 {
					ref = got
					continue
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("combo %d diverges from JSON/JSON:\n  ref: %+v\n  got: %+v", i, ref, got)
				}
			}
		})
	}
	// The gateway's backend clients negotiate the binary codec on
	// their own — the fan-out above must have latched it.
	for i, b := range fed.gw.backends {
		if !b.client().BinaryNegotiated() {
			t.Fatalf("backend %d fan-out still on JSON", i)
		}
	}
}
