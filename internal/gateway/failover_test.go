package gateway

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/server"
)

// TestGatewayFailsOverToFollower is the failover contract: a member
// with a caught-up follower loses availability for at most one probe
// cycle — the gateway promotes the follower, repoints the member, and
// fan-outs answer complete (no partial flag) with the identical id set.
func TestGatewayFailsOverToFollower(t *testing.T) {
	set, err := smartstore.GenerateTrace("MSN", 600, 17)
	if err != nil {
		t.Fatal(err)
	}
	norm := smartstore.FitNormalizer(set.Files)

	// Round-robin partition across two members. Member 1 — the one we
	// will kill — is durable, so it can ship its WAL to a follower.
	var part [2][]*smartstore.File
	for i, f := range set.Files {
		part[i%2] = append(part[i%2], f)
	}
	st0, err := smartstore.Build(part[0], smartstore.Config{
		Units: 8, Shards: 2, Seed: 17, Mode: smartstore.OnLine, Normalizer: norm,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts0 := httptest.NewServer(server.New(st0, server.Options{}))
	t.Cleanup(ts0.Close)

	st1, err := smartstore.Build(part[1], smartstore.Config{
		Units: 8, Shards: 2, Seed: 17, Mode: smartstore.OnLine, Normalizer: norm,
		DataDir: t.TempDir(), Durability: smartstore.DurabilityNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(server.New(st1, server.Options{}))
	t.Cleanup(ts1.Close)

	// Member 1's follower: bootstrapped from its snapshot, tailing its
	// WAL, served read-only with the promotion endpoint wired.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ropts := repl.Options{PollEvery: 5 * time.Millisecond, Logf: func(string, ...any) {}}
	fst, _, err := repl.Bootstrap(ctx, ts1.URL, "", smartstore.Config{
		Seed: 17, Mode: smartstore.OnLine, Normalizer: norm,
	}, ropts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fst.Close() })
	follower := repl.New(fst, ts1.URL, ropts)
	go follower.Run(ctx)
	fsrv := httptest.NewServer(server.New(fst, server.Options{ReadOnly: true, Repl: follower}))
	t.Cleanup(fsrv.Close)

	gw, err := New(Options{
		Backends:     []string{ts0.URL, ts1.URL},
		Followers:    []string{"", fsrv.URL},
		Timeout:      10 * time.Second,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		HealthEvery:  time.Hour, // probes are driven by hand below
	})
	if err != nil {
		t.Fatal(err)
	}
	gateSrv := httptest.NewServer(gw)
	t.Cleanup(gateSrv.Close)
	gate := client.New(gateSrv.URL)

	// Ground truth while everything is up, and the follower caught up.
	full, err := gate.Query(ctx, smartstore.NewRangeQuery(queryAttrs(),
		[]float64{0, 0, 0}, []float64{9e15, 9e15, 9e15}))
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial || len(full.IDs) == 0 {
		t.Fatalf("pre-kill answer partial=%v with %d ids", full.Partial, len(full.IDs))
	}
	deadline := time.Now().Add(10 * time.Second)
	for !follower.Status().CaughtUp {
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill member 1 the hard way and run a probe round: the gateway
	// must notice, verify the follower's watermark, promote it and
	// repoint the member — all inside this one probe.
	ts1.CloseClientConnections()
	ts1.Close()
	gw.probeAll()

	b1 := gw.backends[1]
	if !b1.failedOver.Load() {
		t.Fatal("member 1 did not fail over")
	}
	if !b1.up.Load() {
		t.Fatal("failed-over member reads down")
	}
	if got := b1.activeAddr(); got != fsrv.URL {
		t.Fatalf("member 1 active address = %s, want follower %s", got, fsrv.URL)
	}
	if !follower.Status().Promoted {
		t.Fatal("follower not promoted")
	}

	// The post-kill answer is complete — same id set, no partial flag.
	got, err := gate.Query(ctx, smartstore.NewRangeQuery(queryAttrs(),
		[]float64{0, 0, 0}, []float64{9e15, 9e15, 9e15}))
	if err != nil {
		t.Fatalf("post-failover query: %v", err)
	}
	if got.Partial {
		t.Fatal("post-failover answer flagged partial — failover did not take")
	}
	assertSameSet(t, "post-failover range", got.IDs, full.IDs)

	// The promoted follower takes writes through the gateway: a delete
	// of a member-1 id must land (not 503-indeterminate).
	victim := part[1][0].ID
	if _, err := gate.Delete(victim); err != nil {
		t.Fatalf("post-failover delete via gateway: %v", err)
	}
	if _, ok := fst.FileByID(victim); ok {
		t.Fatal("delete did not reach the promoted follower")
	}

	// Failover state is visible: stats rows and the metric family.
	st, err := gate.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Gateway == nil || len(st.Gateway.Backends) != 2 {
		t.Fatalf("gateway stats rows: %+v", st.Gateway)
	}
	row := st.Gateway.Backends[1]
	if !row.FailedOver || row.Active != fsrv.URL {
		t.Fatalf("member 1 stats row = %+v, want failed_over via %s", row, fsrv.URL)
	}
	text, err := gate.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	fo := obs.FindFamily(fams, "smartgate_failovers_total")
	if fo == nil || len(fo.Samples) == 0 || fo.Samples[0].Value < 1 {
		t.Fatalf("smartgate_failovers_total missing or zero: %+v", fo)
	}
}

// TestGatewayStaysDegradedOnBehindFollower: a follower that is not
// caught up must NOT be promoted — failing over to it would silently
// drop acknowledged writes. The member stays down and answers degrade
// to partial instead.
func TestGatewayStaysDegradedOnBehindFollower(t *testing.T) {
	set, err := smartstore.GenerateTrace("MSN", 200, 17)
	if err != nil {
		t.Fatal(err)
	}
	norm := smartstore.FitNormalizer(set.Files)
	st1, err := smartstore.Build(set.Files, smartstore.Config{
		Units: 8, Shards: 2, Seed: 17, Mode: smartstore.OnLine, Normalizer: norm,
		DataDir: t.TempDir(), Durability: smartstore.DurabilityNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(server.New(st1, server.Options{}))
	t.Cleanup(ts1.Close)

	// The "follower" here never runs its pull loops, so its status
	// reports caught_up false — a permanently-behind replica.
	ctx := context.Background()
	ropts := repl.Options{Logf: func(string, ...any) {}}
	fst, _, err := repl.Bootstrap(ctx, ts1.URL, "", smartstore.Config{
		Seed: 17, Mode: smartstore.OnLine, Normalizer: norm,
	}, ropts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fst.Close() })
	follower := repl.New(fst, ts1.URL, ropts)
	fsrv := httptest.NewServer(server.New(fst, server.Options{ReadOnly: true, Repl: follower}))
	t.Cleanup(fsrv.Close)

	gw, err := New(Options{
		Backends:    []string{ts1.URL},
		Followers:   []string{fsrv.URL},
		Timeout:     5 * time.Second,
		HealthEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	ts1.CloseClientConnections()
	ts1.Close()
	gw.probeAll()

	b := gw.backends[0]
	if b.failedOver.Load() {
		t.Fatal("gateway promoted a behind follower")
	}
	if b.up.Load() {
		t.Fatal("member with a behind follower reads up")
	}
	if follower.Status().Promoted {
		t.Fatal("behind follower was promoted")
	}
}
