package gateway

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// endpointNames fixes the label set of the per-endpoint families, like
// the store's server does: every series exists from the first scrape.
var endpointNames = []string{
	"query", "point", "range", "topk",
	"insert", "delete", "modify", "flush", "stats",
}

// endpointMetrics is one endpoint's counter + latency histogram.
type endpointMetrics struct {
	requests obs.Counter
	dur      obs.Histogram
}

// gatewayMetrics owns the gateway's registry and every family it
// feeds. A nil *gatewayMetrics (Options.DisableMetrics) turns every
// record call into a nil check.
type gatewayMetrics struct {
	reg        *obs.Registry
	endpoints  map[string]*endpointMetrics
	backendDur map[string]*obs.Histogram

	backendsVisited   obs.Counter
	backendsPruned    obs.Counter
	backendsDown      obs.Counter
	partialResponses  obs.Counter
	clientRetries     obs.Counter
	duplicateIDs      obs.Counter
	healthTransitions obs.Counter
	failovers         obs.Counter
	admissionWait     obs.Histogram
	scrapes           obs.Counter
}

// newGatewayMetrics builds the registry and registers every
// gateway-level family under the smartgate_ prefix — per-endpoint
// request counters and latencies mirror the store's families so
// dashboards can overlay the two layers.
func newGatewayMetrics(g *Gateway, backendNames []string) *gatewayMetrics {
	m := &gatewayMetrics{
		reg:        obs.NewRegistry(),
		endpoints:  make(map[string]*endpointMetrics, len(endpointNames)),
		backendDur: make(map[string]*obs.Histogram, len(backendNames)),
	}
	for _, name := range endpointNames {
		em := &endpointMetrics{}
		m.endpoints[name] = em
		m.reg.RegisterCounter("smartgate_http_requests_total",
			obs.Labels("endpoint", name),
			"HTTP requests received per endpoint (admitted or not).", &em.requests)
		m.reg.RegisterHistogram("smartgate_http_request_duration_seconds",
			obs.Labels("endpoint", name),
			"Wall time of admitted requests per endpoint, admission wait included.",
			obs.ScaleNanos, &em.dur)
	}
	for _, name := range backendNames {
		h := &obs.Histogram{}
		m.backendDur[name] = h
		m.reg.RegisterHistogram("smartgate_backend_query_duration_seconds",
			obs.Labels("backend", name),
			"Per-backend wall time of fanned-out query requests, retries included.",
			obs.ScaleNanos, h)
	}
	m.reg.RegisterCounter("smartgate_backends_visited_total", "",
		"Backends a query fan-out was sent to.", &m.backendsVisited)
	m.reg.RegisterCounter("smartgate_backends_pruned_total", "",
		"Healthy backends skipped by placement-correlated routing.", &m.backendsPruned)
	m.reg.RegisterCounter("smartgate_backends_down_total", "",
		"Down backends skipped (or newly failed) during query fan-outs.", &m.backendsDown)
	m.reg.RegisterCounter("smartgate_partial_responses_total", "",
		"Query responses flagged partial because a member was down or failed.", &m.partialResponses)
	m.reg.RegisterCounter("smartgate_client_retries_total", "",
		"Idempotent backend requests retried after a transient failure.", &m.clientRetries)
	m.reg.RegisterCounter("smartgate_duplicate_ids_total", "",
		"Ids claimed by more than one backend in a union merge (overlapping id spaces).", &m.duplicateIDs)
	m.reg.RegisterCounter("smartgate_health_transitions_total", "",
		"Backend up/down state flips (health probes and query-time failures).", &m.healthTransitions)
	m.reg.RegisterCounter("smartgate_failovers_total", "",
		"Members failed over to their promoted follower.", &m.failovers)
	m.reg.RegisterHistogram("smartgate_admission_wait_seconds", "",
		"Time admitted requests spent waiting for a worker slot.",
		obs.ScaleNanos, &m.admissionWait)
	m.reg.RegisterCounterFunc("smartgate_requests_rejected_total", "",
		"Requests shed by admission control (queue overflow or client gone).",
		func() float64 { return float64(g.rejected.Load()) })
	m.reg.RegisterGaugeFunc("smartgate_inflight_requests", "",
		"Requests currently admitted or waiting for a worker slot.",
		func() float64 { return float64(g.inflight.Load()) })
	m.reg.RegisterGaugeFunc("smartgate_uptime_seconds", "",
		"Seconds since the gateway started.",
		func() float64 { return time.Since(g.start).Seconds() })
	m.reg.RegisterCounter("smartgate_metrics_scrapes_total", "",
		"Scrapes of /v1/metrics.", &m.scrapes)
	m.reg.RegisterGaugeFunc("smartgate_build_info",
		obs.Labels("go_version", g.build.GoVersion, "version", g.build.Version),
		"Build information; the value is always 1.",
		func() float64 { return 1 })
	return m
}

// registerBackendGauges adds the per-backend up gauge and the healthy
// count; called after bootstrap, once the backend slice is final.
func (g *Gateway) registerBackendGauges() {
	for _, b := range g.backends {
		b := b
		g.metrics.reg.RegisterGaugeFunc("smartgate_backend_up",
			obs.Labels("backend", b.name),
			"Whether the backend currently passes health checks (1) or is skipped (0).",
			func() float64 {
				if b.up.Load() {
					return 1
				}
				return 0
			})
		g.metrics.reg.RegisterGaugeFunc("smartgate_backend_failed_over",
			obs.Labels("backend", b.name),
			"Whether the member is being served by its promoted follower (1) instead of its original leader (0).",
			func() float64 {
				if b.failedOver.Load() {
					return 1
				}
				return 0
			})
	}
	g.metrics.reg.RegisterGaugeFunc("smartgate_backends_healthy", "",
		"Backends currently passing health checks.",
		func() float64 { return float64(len(g.healthy())) })
}

// observeEndpoint feeds one endpoint's request counter.
func (m *gatewayMetrics) observeEndpoint(endpoint string) {
	if m == nil {
		return
	}
	if em := m.endpoints[endpoint]; em != nil {
		em.requests.Inc()
	}
}

// observeDuration feeds one endpoint's latency histogram.
func (m *gatewayMetrics) observeDuration(endpoint string, d time.Duration) {
	if m == nil {
		return
	}
	if em := m.endpoints[endpoint]; em != nil {
		em.dur.Observe(uint64(d))
	}
}

// observeAdmissionWait feeds the worker-slot wait histogram.
func (m *gatewayMetrics) observeAdmissionWait(d time.Duration) {
	if m == nil {
		return
	}
	m.admissionWait.Observe(uint64(d))
}

// observeBackendQuery feeds one backend's fan-out latency histogram.
func (m *gatewayMetrics) observeBackendQuery(backend string, d time.Duration) {
	if m == nil {
		return
	}
	if h := m.backendDur[backend]; h != nil {
		h.Observe(uint64(d))
	}
}

// handleMetrics serves GET /v1/metrics, bypassing admission control —
// a scrape during overload is exactly when the numbers matter.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g.metrics.scrapes.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.metrics.reg.WritePrometheus(w)
}
