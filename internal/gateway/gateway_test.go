package gateway

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	smartstore "repro"
	"repro/internal/client"
	"repro/internal/server"
)

// queryAttrs is the placement predicate every store in these tests
// groups on — the trace's default (mtime, read and write volume).
func queryAttrs() []smartstore.Attr {
	return []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes, smartstore.AttrWriteBytes}
}

// federation is the equivalence fixture: one single store holding the
// whole corpus (the ground truth) and the same corpus round-robin
// partitioned across nBackends stores behind a gateway — all built
// against one shared normalizer, all on-line, both ends served over
// real HTTP.
type federation struct {
	files    []*smartstore.File
	perNode  [][]*smartstore.File
	single   *client.Client
	gate     *client.Client
	gateURL  string
	gw       *Gateway
	backends []*httptest.Server
}

func buildFederation(t testing.TB, n, nBackends int) *federation {
	t.Helper()
	set, err := smartstore.GenerateTrace("MSN", n, 17)
	if err != nil {
		t.Fatal(err)
	}
	norm := smartstore.FitNormalizer(set.Files)
	cfg := func(units, shards int) smartstore.Config {
		return smartstore.Config{
			Units:      units,
			Shards:     shards,
			Seed:       17,
			Mode:       smartstore.OnLine,
			Normalizer: norm,
		}
	}

	singleStore, err := smartstore.Build(set.Files, cfg(24, 3))
	if err != nil {
		t.Fatal(err)
	}
	singleSrv := httptest.NewServer(server.New(singleStore, server.Options{}))
	t.Cleanup(singleSrv.Close)

	fed := &federation{
		files:   set.Files,
		perNode: make([][]*smartstore.File, nBackends),
		single:  client.New(singleSrv.URL),
	}
	for i, f := range set.Files {
		fed.perNode[i%nBackends] = append(fed.perNode[i%nBackends], f)
	}
	urls := make([]string, nBackends)
	for i, part := range fed.perNode {
		st, err := smartstore.Build(part, cfg(8, 2))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(st, server.Options{}))
		t.Cleanup(ts.Close)
		fed.backends = append(fed.backends, ts)
		urls[i] = ts.URL
	}

	gw, err := New(Options{
		Backends:     urls,
		Timeout:      10 * time.Second,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		HealthEvery:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	fed.gw = gw
	gateSrv := httptest.NewServer(gw)
	t.Cleanup(gateSrv.Close)
	fed.gate = client.New(gateSrv.URL)
	fed.gateURL = gateSrv.URL
	return fed
}

func toSet(ids []uint64) map[uint64]bool {
	m := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// assertSameSet compares unordered answers (point, range).
func assertSameSet(t *testing.T, label string, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ids, single store says %d", label, len(got), len(want))
	}
	w := toSet(want)
	for _, id := range got {
		if !w[id] {
			t.Fatalf("%s: id %d not in the single store's answer", label, id)
		}
	}
}

// assertSameOrdered compares ordered answers (top-k, ties included —
// the shared merge rules make the order bit-identical, not just the
// set).
func assertSameOrdered(t *testing.T, label string, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ids, single store says %d\n got %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: position %d is %d, single store says %d\n got %v\nwant %v",
				label, i, got[i], want[i], got, want)
		}
	}
}

// rangeWindows is a spread of selectivities over the query attrs.
func rangeWindows() [][2][]float64 {
	return [][2][]float64{
		{{36000, 3e7, 0}, {59000, 5e7, 9e15}},
		{{0, 0, 0}, {9e15, 9e15, 9e15}}, // everything
		{{50000, 0, 0}, {50001, 9e15, 9e15}},
		{{9e14, 9e14, 9e14}, {9.1e14, 9.1e14, 9.1e14}}, // nothing
	}
}

// topkPoints is a spread of query points (raw attribute units).
func topkPoints() [][]float64 {
	return [][]float64{
		{40000, 3e7, 6e7},
		{0, 0, 0},
		{86400, 1e9, 1e9},
		{55000, 4.5e7, 2e7},
	}
}

// assertEquivalent drives the same queries through the gateway and the
// single store and demands identical answers.
func (fed *federation) assertEquivalent(t *testing.T, ctx context.Context, phase string) {
	t.Helper()
	// Point lookups, including paths that do not exist.
	for i := 0; i < 10; i++ {
		path := fed.files[(i*271)%len(fed.files)].Path
		g, err := fed.gate.Query(ctx, smartstore.NewPointQuery(path))
		if err != nil {
			t.Fatalf("%s point: %v", phase, err)
		}
		s, err := fed.single.Query(ctx, smartstore.NewPointQuery(path))
		if err != nil {
			t.Fatal(err)
		}
		assertSameSet(t, fmt.Sprintf("%s point %q", phase, path), g.IDs, s.IDs)
		if g.Partial {
			t.Fatalf("%s point: fully healthy federation answered partial", phase)
		}
	}
	// Range windows.
	for wi, w := range rangeWindows() {
		q := smartstore.NewRangeQuery(queryAttrs(), w[0], w[1])
		g, err := fed.gate.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s range[%d]: %v", phase, wi, err)
		}
		s, err := fed.single.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSet(t, fmt.Sprintf("%s range[%d]", phase, wi), g.IDs, s.IDs)
	}
	// Top-k: ordered, several k, distances on.
	for pi, pt := range topkPoints() {
		for _, k := range []int{1, 10, 57} {
			q := smartstore.NewTopKQuery(queryAttrs(), pt, k)
			q.Options.IncludeDists = true
			g, err := fed.gate.Query(ctx, q)
			if err != nil {
				t.Fatalf("%s topk[%d] k=%d: %v", phase, pi, k, err)
			}
			s, err := fed.single.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("%s topk[%d] k=%d", phase, pi, k)
			assertSameOrdered(t, label, g.IDs, s.IDs)
			if len(g.Dists) != len(g.IDs) {
				t.Fatalf("%s: %d dists for %d ids", label, len(g.Dists), len(g.IDs))
			}
			for i := 1; i < len(g.Dists); i++ {
				if g.Dists[i] < g.Dists[i-1] {
					t.Fatalf("%s: dists not ascending: %v", label, g.Dists)
				}
			}
		}
	}
}

func TestGatewayMatchesSingleStore(t *testing.T) {
	fed := buildFederation(t, 1800, 3)
	ctx := context.Background()
	fed.assertEquivalent(t, ctx, "fresh")

	// Limit: the truncated subset is answer-dependent for unions, so
	// the contract is size + membership in the full answer. The
	// match-everything window guarantees more than Limit candidates.
	w := rangeWindows()[1]
	full, err := fed.single.Query(ctx, smartstore.NewRangeQuery(queryAttrs(), w[0], w[1]))
	if err != nil {
		t.Fatal(err)
	}
	limited := smartstore.NewRangeQuery(queryAttrs(), w[0], w[1])
	limited.Options.Limit = 5
	g, err := fed.gate.Query(ctx, limited)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.IDs) != 5 || !g.Truncated {
		t.Fatalf("limited range answered %d ids (truncated=%v)", len(g.IDs), g.Truncated)
	}
	fullSet := toSet(full.IDs)
	for _, id := range g.IDs {
		if !fullSet[id] {
			t.Fatalf("limited range id %d outside the full answer", id)
		}
	}
	// Top-k with a limit keeps the ordered prefix exactly.
	lq := smartstore.NewTopKQuery(queryAttrs(), topkPoints()[0], 20)
	lq.Options.Limit = 7
	g, err = fed.gate.Query(ctx, lq)
	if err != nil {
		t.Fatal(err)
	}
	s, err := fed.single.Query(ctx, smartstore.NewTopKQuery(queryAttrs(), topkPoints()[0], 20))
	if err != nil {
		t.Fatal(err)
	}
	assertSameOrdered(t, "limited topk", g.IDs, s.IDs[:7])

	// Record projection travels intact through the fan-out merge.
	rq := smartstore.NewTopKQuery(queryAttrs(), topkPoints()[0], 12)
	rq.Options.IncludeRecords = true
	g, err = fed.gate.Query(ctx, rq)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Records) != len(g.IDs) {
		t.Fatalf("projected %d records for %d ids", len(g.Records), len(g.IDs))
	}
	for i, rec := range g.Records {
		if rec.ID != g.IDs[i] {
			t.Fatalf("record %d is id %d, answer order says %d", i, rec.ID, g.IDs[i])
		}
	}

	// Batch: every member answers like its standalone twin.
	batch := []smartstore.Query{
		smartstore.NewPointQuery(fed.files[3].Path),
		smartstore.NewRangeQuery(queryAttrs(), w[0], w[1]),
		smartstore.NewTopKQuery(queryAttrs(), topkPoints()[1], 15),
	}
	gb, err := fed.gate.QueryBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := fed.single.QueryBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(gb.Results) != 3 || len(sb.Results) != 3 {
		t.Fatalf("batch answered %d/%d results", len(gb.Results), len(sb.Results))
	}
	assertSameSet(t, "batch point", gb.Results[0].IDs, sb.Results[0].IDs)
	assertSameSet(t, "batch range", gb.Results[1].IDs, sb.Results[1].IDs)
	assertSameOrdered(t, "batch topk", gb.Results[2].IDs, sb.Results[2].IDs)
}

func TestGatewayMutationsKeepEquivalence(t *testing.T) {
	fed := buildFederation(t, 1200, 3)
	ctx := context.Background()

	// Inserts with explicit ids, mirrored to both ends. The gateway
	// places them by centroid; where they land must not matter.
	var fresh []*smartstore.File
	for i := 0; i < 30; i++ {
		src := fed.files[(i*37)%len(fed.files)]
		f := &smartstore.File{ID: uint64(9_000_000 + i), Path: fmt.Sprintf("/fed/new-%d.dat", i), Attrs: src.Attrs}
		fresh = append(fresh, f)
	}
	if _, err := fed.gate.Insert(fresh); err != nil {
		t.Fatalf("gateway insert: %v", err)
	}
	if _, err := fed.single.Insert(fresh); err != nil {
		t.Fatalf("single insert: %v", err)
	}
	if _, err := fed.gate.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.single.Flush(); err != nil {
		t.Fatal(err)
	}
	fed.files = append(fed.files, fresh...)
	fed.assertEquivalent(t, ctx, "post-insert")

	// The learned id index routes a delete straight to the owner; a
	// never-learned id (original corpus) routes by fan-out. Both must
	// agree with the single store.
	for _, id := range []uint64{9_000_003, 9_000_017, fed.files[100].ID, fed.files[700].ID} {
		gm, err := fed.gate.Delete(id)
		if err != nil {
			t.Fatalf("gateway delete %d: %v", id, err)
		}
		sm, err := fed.single.Delete(id)
		if err != nil {
			t.Fatal(err)
		}
		if !gm.Found || !sm.Found {
			t.Fatalf("delete %d: found gateway=%v single=%v", id, gm.Found, sm.Found)
		}
	}
	// Deleting an id that exists nowhere answers found=false (healthy
	// membership, so the verdict is authoritative).
	gm, err := fed.gate.Delete(77_000_000)
	if err != nil {
		t.Fatalf("delete of unknown id: %v", err)
	}
	if gm.Found {
		t.Fatal("unknown id reported found")
	}

	// Partial-attribute modify keeps merge semantics through the
	// forwarding: only the named attribute moves.
	target := fed.files[500].ID
	rec := server.FileRecord{ID: target, Attrs: map[string]float64{"mtime": 123456}}
	if _, err := fed.gate.ModifyRecord(ctx, rec); err != nil {
		t.Fatalf("gateway modify: %v", err)
	}
	if _, err := fed.single.ModifyRecord(ctx, rec); err != nil {
		t.Fatal(err)
	}
	fed.assertEquivalent(t, ctx, "post-mutation")
}

func TestGatewayTraceCarriesBackends(t *testing.T) {
	fed := buildFederation(t, 600, 2)
	tcl := fed.gate.WithTrace()
	resp, err := tcl.Query(context.Background(), smartstore.NewTopKQuery(queryAttrs(), topkPoints()[0], 5))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("traced query returned no trace")
	}
	if len(resp.Trace.Backends) != 2 {
		t.Fatalf("trace lists %d backends, want 2", len(resp.Trace.Backends))
	}
	for _, bt := range resp.Trace.Backends {
		if bt.Down {
			t.Fatalf("backend %s flagged down in a healthy federation", bt.Backend)
		}
		if bt.Trace == nil {
			t.Fatalf("backend %s trace not propagated", bt.Backend)
		}
	}
	var sawMerge bool
	for _, p := range resp.Trace.Phases {
		if p.Name == "merge" {
			sawMerge = true
		}
	}
	if !sawMerge {
		t.Fatalf("gateway trace lacks the derived merge phase: %+v", resp.Trace.Phases)
	}
}

func TestGatewayStatsAggregate(t *testing.T) {
	fed := buildFederation(t, 900, 3)
	st, err := fed.gate.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Gateway == nil {
		t.Fatal("gateway stats lack the gateway section")
	}
	if st.Gateway.Healthy != 3 || len(st.Gateway.Backends) != 3 {
		t.Fatalf("membership reports %d healthy of %d", st.Gateway.Healthy, len(st.Gateway.Backends))
	}
	if st.Store.Files != len(fed.files) {
		t.Fatalf("aggregate files %d, corpus holds %d", st.Store.Files, len(fed.files))
	}
	sum := 0
	for _, row := range st.Gateway.Backends {
		if !row.Healthy {
			t.Fatalf("backend %s unhealthy in a fresh federation", row.Backend)
		}
		sum += row.Files
	}
	if sum != len(fed.files) {
		t.Fatalf("per-backend files sum to %d, corpus holds %d", sum, len(fed.files))
	}
}
