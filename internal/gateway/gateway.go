// Package gateway is the scale-out serving layer of the reproduction:
// a thin federating daemon (cmd/smartgate) in front of a static
// membership of N smartstored backends, lifting the engine's
// shard-level semantics to the network. It serves the exact same
// HTTP/JSON wire API as a single smartstored — smartctl, smartbench
// and internal/client work against it unchanged — while queries fan
// out concurrently over the typed client and fold back together with
// the shared exact-merge rules (internal/merge): point and range
// answers union per-backend id lists, top-k answers keep the k
// globally nearest by true normalized distance, so a gateway answer
// over N backends is identical to a single store holding the union of
// their corpora (on-line mode, shared normalizer — see DESIGN.md §9).
//
// Placement mirrors the engine one level up: at bootstrap the gateway
// reads each backend's placement summary (attributes, raw centroid,
// normalization bounds) from /v1/stats, composes federation-wide
// bounds, and freezes per-backend centroids in that space. Inserts
// route to the nearest healthy centroid; deletes and modifies route
// through a lazily learned id → backend index, falling back to a
// healthy fan-out.
//
// Health checks (Client.Healthy on the /healthz endpoint) drive
// graceful degradation: a down backend is skipped, the answer is
// computed from the healthy members and flagged Partial in the
// response envelope — never a 500 — and the outage is visible in the
// gateway's own /v1/metrics.
package gateway

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/metadata"
	"repro/internal/server"
	"repro/internal/version"
)

// Options parameterizes a Gateway. Backends is required; every other
// zero value selects a default.
type Options struct {
	// Backends is the static membership: one smartstored address
	// ("host:port" or full URL) per backend.
	Backends []string
	// Followers optionally names a replication follower per backend,
	// positionally (empty entries mean "no follower"; shorter than
	// Backends is fine). When a member goes down and its follower
	// reports itself caught up, the health loop promotes the follower
	// and fails the member over to it — answers stay complete instead
	// of degrading to partial. Fail-back is operator-managed.
	Followers []string
	// HealthEvery is the health-check cadence (0 → 2s).
	HealthEvery time.Duration
	// Timeout bounds each backend request attempt (0 → 10s).
	Timeout time.Duration
	// Retries is how many extra attempts an idempotent backend read
	// gets after a transient failure (negative → 0; 0 → 2).
	Retries int
	// RetryBackoff is the initial retry delay, doubling per retry
	// (0 → 25ms).
	RetryBackoff time.Duration
	// Workers bounds concurrently executing requests (0 → 4×GOMAXPROCS
	// — gateway work is network-bound, so it runs wider than a store).
	Workers int
	// MaxQueue bounds requests waiting for a worker slot (0 →
	// 8×Workers).
	MaxQueue int
	// DisableMetrics drops the metrics registry and the /v1/metrics
	// route.
	DisableMetrics bool
	// BootstrapWait bounds how long New retries unreachable backends
	// before giving up (0 → 15s). Every backend must answer its
	// placement once at bootstrap; after that, health checks take over.
	BootstrapWait time.Duration
}

func (o Options) withDefaults() Options {
	if o.HealthEvery <= 0 {
		o.HealthEvery = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 8 * o.Workers
	}
	if o.BootstrapWait <= 0 {
		o.BootstrapWait = 15 * time.Second
	}
	return o
}

// backend is one member of the federation. Its identity (name, idx,
// centroid, metric labels) is fixed at bootstrap; the clients behind
// it can be swapped once by a failover, so every request path goes
// through the client()/tclient() accessors rather than the fields.
type backend struct {
	idx  int
	name string
	// follower is the member's configured replication follower address
	// ("" = none) — the failover target.
	follower string

	// clMu guards the swappable serving identity: cl is the plain
	// client, tcl its trace-propagating copy, active the address they
	// point at (name until a failover, follower after).
	clMu   sync.RWMutex
	cl     *client.Client
	tcl    *client.Client
	active string

	// up flips with health checks and query-time transport failures; a
	// down backend is skipped by fan-outs until a health check brings
	// it back (or fails it over).
	up atomic.Bool
	// failedOver latches once the member has been switched to its
	// follower; there is no automatic fail-back.
	failedOver atomic.Bool
	// centroid is the backend's frozen placement centroid, normalized
	// into the federation-wide bounds — the insert routing target.
	centroid []float64
}

// client returns the member's current plain client.
func (b *backend) client() *client.Client {
	b.clMu.RLock()
	defer b.clMu.RUnlock()
	return b.cl
}

// tclient returns the member's current trace-propagating client.
func (b *backend) tclient() *client.Client {
	b.clMu.RLock()
	defer b.clMu.RUnlock()
	return b.tcl
}

// activeAddr returns the address currently serving this member.
func (b *backend) activeAddr() string {
	b.clMu.RLock()
	defer b.clMu.RUnlock()
	return b.active
}

// swapTo repoints the member at addr with the given client pair — the
// failover commit.
func (b *backend) swapTo(addr string, cl, tcl *client.Client) {
	b.clMu.Lock()
	b.cl, b.tcl, b.active = cl, tcl, addr
	b.clMu.Unlock()
}

// Gateway federates N smartstored backends behind the single-store
// wire API. It implements http.Handler.
type Gateway struct {
	opts  Options
	mux   *http.ServeMux
	start time.Time

	backends []*backend
	// attrs is the placement predicate shared by every backend; lo/hi
	// are the composed federation-wide normalization bounds over it.
	attrs  []metadata.Attr
	lo, hi []float64

	sem      chan struct{}
	inflight atomic.Int64
	requests atomic.Uint64
	rejected atomic.Uint64

	// insMu makes gateway-side id allocation atomic with the insert
	// fan-out, exactly like the single store's allocator: nextID starts
	// above every backend's bootstrap maximum.
	insMu  sync.Mutex
	nextID uint64

	// assign is the lazily learned id → backend index: inserts record
	// their placement, deletes/modifies learn from fan-out answers.
	// Unknown ids fall back to a healthy fan-out.
	idMu   sync.RWMutex
	assign map[uint64]int

	// clOpts is the client configuration every member client is built
	// with — kept so a failover can build the follower's client
	// identically.
	clOpts client.Options

	metrics *gatewayMetrics
	build   version.BuildInfo
}

// New builds a gateway over the given membership, reading every
// backend's placement summary (retrying unreachable backends up to
// Options.BootstrapWait) and validating that all backends share one
// placement predicate.
func New(opts Options) (*Gateway, error) {
	opts = opts.withDefaults()
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	g := &Gateway{
		opts:   opts,
		mux:    http.NewServeMux(),
		start:  time.Now(),
		sem:    make(chan struct{}, opts.Workers),
		assign: make(map[uint64]int),
		build:  version.Build(),
	}
	if !opts.DisableMetrics {
		g.metrics = newGatewayMetrics(g, opts.Backends)
	}
	clOpts := client.Options{
		Timeout:      opts.Timeout,
		Retries:      opts.Retries,
		RetryBackoff: opts.RetryBackoff,
		OnRetry: func(string, int, error) {
			if g.metrics != nil {
				g.metrics.clientRetries.Inc()
			}
		},
	}
	g.clOpts = clOpts
	if len(opts.Followers) > len(opts.Backends) {
		return nil, fmt.Errorf("gateway: %d followers for %d backends", len(opts.Followers), len(opts.Backends))
	}
	for i, addr := range opts.Backends {
		b := &backend{idx: i, name: addr, active: addr, cl: client.NewWithOptions(addr, clOpts)}
		b.tcl = b.cl.WithTrace()
		if i < len(opts.Followers) {
			b.follower = opts.Followers[i]
		}
		g.backends = append(g.backends, b)
	}

	// Bootstrap: fetch every backend's placement, compose the
	// federation-wide bounds, and freeze normalized centroids.
	placements := make([]*server.PlacementWire, len(g.backends))
	deadline := time.Now().Add(opts.BootstrapWait)
	for i, b := range g.backends {
		for {
			st, err := b.client().Stats()
			if err == nil {
				if st.Placement == nil {
					return nil, fmt.Errorf("gateway: backend %s reports no placement (not a smartstored?)", b.name)
				}
				placements[i] = st.Placement
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("gateway: backend %s unreachable at bootstrap: %w", b.name, err)
			}
			time.Sleep(200 * time.Millisecond)
		}
		b.up.Store(true)
	}
	if err := g.composePlacement(placements); err != nil {
		return nil, err
	}
	if g.metrics != nil {
		g.registerBackendGauges()
	}
	g.routes()
	return g, nil
}

// composePlacement validates the shared placement predicate and builds
// the federation-wide normalization plus per-backend centroids.
func (g *Gateway) composePlacement(placements []*server.PlacementWire) error {
	first := placements[0]
	attrs := make([]metadata.Attr, len(first.Attrs))
	for j, name := range first.Attrs {
		a, err := metadata.ParseAttr(name)
		if err != nil {
			return fmt.Errorf("gateway: backend %s placement: %w", g.backends[0].name, err)
		}
		attrs[j] = a
	}
	g.attrs = attrs
	g.lo = append([]float64(nil), first.Lo...)
	g.hi = append([]float64(nil), first.Hi...)
	for i, p := range placements[1:] {
		if len(p.Attrs) != len(first.Attrs) {
			return fmt.Errorf("gateway: backend %s placement attrs %v differ from %s's %v",
				g.backends[i+1].name, p.Attrs, g.backends[0].name, first.Attrs)
		}
		for j := range p.Attrs {
			if p.Attrs[j] != first.Attrs[j] {
				return fmt.Errorf("gateway: backend %s placement attrs %v differ from %s's %v",
					g.backends[i+1].name, p.Attrs, g.backends[0].name, first.Attrs)
			}
		}
		for j := range g.lo {
			if j < len(p.Lo) && p.Lo[j] < g.lo[j] {
				g.lo[j] = p.Lo[j]
			}
			if j < len(p.Hi) && p.Hi[j] > g.hi[j] {
				g.hi[j] = p.Hi[j]
			}
		}
	}
	for i, p := range placements {
		g.backends[i].centroid = g.normalize(p.Centroid)
		if p.MaxFileID > g.nextID {
			g.nextID = p.MaxFileID
		}
	}
	return nil
}

// normalize maps a raw placement-space vector into the composed [0,1]
// bounds; a degenerate dimension (hi ≤ lo) maps to 0.
func (g *Gateway) normalize(raw []float64) []float64 {
	out := make([]float64, len(g.attrs))
	for j := range out {
		if j >= len(raw) {
			continue
		}
		lo, hi := g.lo[j], g.hi[j]
		if hi <= lo {
			continue
		}
		v := (raw[j] - lo) / (hi - lo)
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out[j] = v
	}
	return out
}

// normValue normalizes one attribute value against the composed
// bounds, or reports that the attribute is outside the placement
// predicate.
func (g *Gateway) normValue(a metadata.Attr, v float64) (float64, bool) {
	for j, pa := range g.attrs {
		if pa == a {
			lo, hi := g.lo[j], g.hi[j]
			if hi <= lo {
				return 0, true
			}
			x := (v - lo) / (hi - lo)
			if x < 0 {
				x = 0
			} else if x > 1 {
				x = 1
			}
			return x, true
		}
	}
	return 0, false
}

// healthy returns the currently-up members, in membership order.
func (g *Gateway) healthy() []*backend {
	out := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		if b.up.Load() {
			out = append(out, b)
		}
	}
	return out
}

// markDown flips a backend down after a query-time transport failure,
// so subsequent fan-outs skip it immediately instead of timing out
// again; the health loop brings it back when /healthz answers.
func (g *Gateway) markDown(b *backend) {
	if b.up.CompareAndSwap(true, false) {
		if g.metrics != nil {
			g.metrics.healthTransitions.Inc()
		}
	}
}

// Run drives the health loop until ctx is cancelled: every
// Options.HealthEvery, all backends are probed concurrently and their
// up state updated. Transitions count into the metrics registry.
func (g *Gateway) Run(ctx context.Context) {
	ticker := time.NewTicker(g.opts.HealthEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			g.probeAll()
		}
	}
}

// probeAll health-checks every backend concurrently. A member that
// fails its probe and has a configured follower is failed over: when
// the follower reports itself caught up, the gateway promotes it and
// repoints the member's clients at it, so fan-outs answer complete
// through the follower instead of degrading to partial. The failover
// latches — a leader coming back later does NOT win its slot back
// automatically, because the promoted follower has accepted writes the
// returned leader never saw; fail-back is an operator action
// (DESIGN.md §11).
func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			h := b.client().Healthy()
			if !h && b.follower != "" && !b.failedOver.Load() {
				h = g.maybeFailover(b)
			}
			if b.up.Swap(h) != h && g.metrics != nil {
				g.metrics.healthTransitions.Inc()
			}
		}(b)
	}
	wg.Wait()
}

// maybeFailover tries to fail member b over to its follower, reporting
// whether the member is now serving (through the follower). The
// follower must answer health checks and report itself caught up (or
// already promoted — a previous attempt's promotion may have landed
// without the swap); a behind follower is left alone and the member
// stays degraded — failing over to it would silently drop acknowledged
// writes, which is worse than a partial answer that says so.
func (g *Gateway) maybeFailover(b *backend) bool {
	fcl := client.NewWithOptions(b.follower, g.clOpts)
	st, err := fcl.ReplStatus()
	if err != nil {
		log.Printf("smartgate: backend %s down, follower %s unreachable: %v", b.name, b.follower, err)
		return false
	}
	if !st.CaughtUp && !st.Promoted {
		log.Printf("smartgate: backend %s down, follower %s not caught up — staying degraded", b.name, b.follower)
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.Timeout)
	defer cancel()
	if _, err := fcl.Promote(ctx); err != nil {
		log.Printf("smartgate: backend %s down, promoting follower %s failed: %v", b.name, b.follower, err)
		return false
	}
	b.swapTo(b.follower, fcl, fcl.WithTrace())
	b.failedOver.Store(true)
	if g.metrics != nil {
		g.metrics.failovers.Inc()
	}
	log.Printf("smartgate: backend %s failed over to follower %s (promoted)", b.name, b.follower)
	return true
}

// offlineMaxBackends caps an off-line top-k fan-out, mirroring the
// engine's shard-level budget: the most-correlated backend plus a few
// siblings, growing slowly with the membership size.
func offlineMaxBackends(n int) int {
	m := 1 + n/4
	if m > n {
		m = n
	}
	return m
}

// nearestBackends ranks the healthy backends by placement-centroid
// distance to the query point over the queried attributes, returning
// the closest max in membership order. Queried attributes sharing no
// dimension with the placement predicate carry no signal, so the
// routing falls back to every healthy backend — the same fallback the
// engine's shard routing uses.
func (g *Gateway) nearestBackends(healthy []*backend, attrs []metadata.Attr, point []float64, max int) []*backend {
	overlap := false
	for _, a := range attrs {
		for _, pa := range g.attrs {
			if pa == a {
				overlap = true
			}
		}
	}
	if !overlap || len(healthy) <= max {
		return healthy
	}
	type ranked struct {
		b    *backend
		dist float64
	}
	rs := make([]ranked, len(healthy))
	for i, b := range healthy {
		var d float64
		for j, a := range attrs {
			v, ok := g.normValue(a, point[j])
			if !ok {
				continue
			}
			for k, pa := range g.attrs {
				if pa == a && k < len(b.centroid) {
					x := v - b.centroid[k]
					d += x * x
				}
			}
		}
		rs[i] = ranked{b: b, dist: d}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].dist != rs[j].dist {
			return rs[i].dist < rs[j].dist
		}
		return rs[i].b.idx < rs[j].b.idx
	})
	out := make([]*backend, max)
	for i := 0; i < max; i++ {
		out[i] = rs[i].b
	}
	sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
	return out
}

// placeInsert routes one wire record to the nearest healthy backend's
// frozen centroid — the gateway-level twin of Engine.shardFor.
func (g *Gateway) placeInsert(rec server.FileRecord, healthy []*backend) *backend {
	if len(healthy) == 1 {
		return healthy[0]
	}
	v := make([]float64, len(g.attrs))
	for j, a := range g.attrs {
		if raw, ok := rec.Attrs[a.String()]; ok {
			nv, _ := g.normValue(a, raw)
			v[j] = nv
		}
	}
	best, bestDist := healthy[0], -1.0
	for _, b := range healthy {
		var d float64
		for j := range v {
			if j < len(b.centroid) {
				x := v[j] - b.centroid[j]
				d += x * x
			}
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = b, d
		}
	}
	return best
}

// learn records (or forgets, for idx < 0) one id's owning backend.
func (g *Gateway) learn(id uint64, idx int) {
	g.idMu.Lock()
	if idx < 0 {
		delete(g.assign, id)
	} else {
		g.assign[id] = idx
	}
	g.idMu.Unlock()
}

// owner looks up one id's learned backend, if any.
func (g *Gateway) owner(id uint64) (*backend, bool) {
	g.idMu.RLock()
	idx, ok := g.assign[id]
	g.idMu.RUnlock()
	if !ok || idx >= len(g.backends) {
		return nil, false
	}
	return g.backends[idx], true
}
