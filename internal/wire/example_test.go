package wire_test

import (
	"bytes"
	"fmt"

	"repro/internal/wire"
)

// A range query round-trips through the binary codec: the client
// encodes a request frame, the server streams a framed response, and
// both decode back to the identical Go values the JSON codec produces.
func Example() {
	req := &wire.QueryRequest{WireQuery: wire.WireQuery{
		Kind:  "range",
		Attrs: []string{"mtime", "read_bytes"},
		Lo:    []float64{36000, 3e7},
		Hi:    []float64{59000, 5e7},
		Limit: 3,
	}}
	frame, err := wire.EncodeRequest(req)
	if err != nil {
		panic(err)
	}
	back, err := wire.DecodeRequest(frame)
	if err != nil {
		panic(err)
	}
	fmt.Println(back.Kind, back.Attrs, back.Limit)

	resp := &wire.QueryResponse{
		Kind:  "range",
		IDs:   []uint64{11, 42, 97},
		Count: 3,
		Report: wire.Report{
			LatencySec: 0.0017,
			Messages:   6,
			Hops:       2,
		},
	}
	var buf bytes.Buffer
	if err := wire.EncodeResponse(&buf, resp); err != nil {
		panic(err)
	}
	got, err := wire.DecodeResponse(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(got.IDs, got.Count, got.Report.Messages)
	// Output:
	// range [mtime read_bytes] 3
	// [11 42 97] 3 6
}
