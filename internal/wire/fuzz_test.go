package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at every binary decoder the
// server and client expose to the network. The contract under fuzz:
// never panic, never hang, and classify every input as either a valid
// stream or ErrMalformed — the error the HTTP layer maps to 400. A
// successfully decoded request must also re-encode and re-decode
// cleanly (the decoder accepts nothing the encoder cannot express).
func FuzzWireDecode(f *testing.F) {
	// Seed with well-formed streams of each kind so the fuzzer starts
	// inside the format and mutates outward.
	if req, err := EncodeRequest(&QueryRequest{WireQuery: WireQuery{Kind: "point", Path: "/seed"}}); err == nil {
		f.Add(req)
	}
	if req, err := EncodeRequest(&QueryRequest{Queries: []WireQuery{
		{Kind: "range", Attrs: []string{"mtime"}, Lo: []float64{0}, Hi: []float64{1}},
		{Kind: "topk", Attrs: []string{"mtime"}, Point: []float64{2}, K: 3, IncludeDists: true},
	}}); err == nil {
		f.Add(req)
	}
	var single bytes.Buffer
	if err := EncodeResponse(&single, &QueryResponse{
		Kind: "topk", IDs: []uint64{1, 2}, Count: 2, Dists: []float64{0.1, 0.2},
		Records: []FileRecord{{ID: 1, Path: "/r", Attrs: map[string]float64{"mtime": 9}}},
		Report:  Report{LatencySec: 0.5, Messages: 3},
		Trace:   &TraceWire{TotalMs: 1, Phases: []PhaseWire{{Name: "execute", Ms: 0.9}}},
	}); err == nil {
		f.Add(single.Bytes())
	}
	var batch bytes.Buffer
	if err := EncodeBatchResponse(&batch, &BatchQueryResponse{Results: []QueryResponse{
		{IDs: []uint64{7}, Count: 1, Report: Report{}},
		{Error: "boom", Report: Report{}},
	}}); err == nil {
		f.Add(batch.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(data); err == nil {
			re, err := EncodeRequest(req)
			if err != nil {
				t.Fatalf("decoded request does not re-encode: %v", err)
			}
			if _, err := DecodeRequest(re); err != nil {
				t.Fatalf("re-encoded request does not re-decode: %v", err)
			}
		} else if !errors.Is(err, ErrMalformed) {
			t.Fatalf("DecodeRequest returned a non-ErrMalformed error: %v", err)
		}
		if _, err := DecodeResponseBytes(data); err != nil && !errors.Is(err, ErrMalformed) {
			t.Fatalf("DecodeResponseBytes returned a non-ErrMalformed error: %v", err)
		}
		if _, err := DecodeBatchResponseBytes(data); err != nil && !errors.Is(err, ErrMalformed) {
			t.Fatalf("DecodeBatchResponseBytes returned a non-ErrMalformed error: %v", err)
		}
	})
}
