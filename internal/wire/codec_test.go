package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// sampleRequests covers every query shape the endpoint accepts: point,
// range, top-k (with and without options), and batches mixing them.
func sampleRequests() []*QueryRequest {
	return []*QueryRequest{
		{WireQuery: WireQuery{Kind: "point", Path: "/a/b.dat"}},
		{WireQuery: WireQuery{Kind: "point", Path: "/a/b.dat", Mode: "online", IncludeRecords: true}},
		{WireQuery: WireQuery{
			Kind: "range", Attrs: []string{"mtime", "read_bytes"},
			Lo: []float64{0, -3.5}, Hi: []float64{100, math.MaxFloat64}, Limit: 7,
		}},
		{WireQuery: WireQuery{
			Kind: "topk", Attrs: []string{"mtime"}, Point: []float64{42.25},
			K: 9, IncludeDists: true, IncludeRecords: true, Mode: "offline",
		}},
		{Queries: []WireQuery{
			{Kind: "point", Path: "/x"},
			{Kind: "range", Attrs: []string{"mtime"}, Lo: []float64{1}, Hi: []float64{2}},
			{Kind: "topk", Attrs: []string{"read_bytes"}, Point: []float64{0}, K: 3},
		}},
	}
}

// sampleResponses covers the answer shapes: empty, ids-only, nil ids
// (error items), dists, records (with and without attrs), truncation,
// partial, cached, traces, errors.
func sampleResponses() []*QueryResponse {
	return []*QueryResponse{
		{Kind: "point", IDs: []uint64{}, Count: 0, Report: Report{}},
		{Kind: "range", IDs: []uint64{1, 2, 3}, Count: 3, Cached: true,
			Report: Report{LatencySec: 0.25, Messages: 12, Hops: 3, UnitsSearched: 4}},
		{Kind: "topk", IDs: []uint64{9, 8}, Count: 2,
			Dists:  []float64{0.125, math.MaxFloat64},
			Report: Report{VersionChecked: 2, VersionLatencySec: 0.5}},
		{Kind: "range", IDs: []uint64{5}, Count: 900, Truncated: true, Partial: true,
			Records: []FileRecord{
				{ID: 5, Path: "/r/5.dat", Attrs: map[string]float64{"mtime": 1, "read_bytes": -2.5}},
			},
			Report: Report{LatencySec: 1}},
		{IDs: nil, Count: 0, Error: "backend exploded", Report: Report{}},
		{Kind: "point", IDs: []uint64{7}, Count: 1,
			Trace: &TraceWire{
				TotalMs: 1.5,
				Phases:  []PhaseWire{{Name: "execute", Ms: 1.25}},
				Shards:  []ShardWire{{Shard: 0, Ms: 1.2}, {Shard: 1, Pruned: true}},
				Backends: []BackendTraceWire{{Backend: "b0", Ms: 1.0,
					Trace: &TraceWire{TotalMs: 0.9, Phases: []PhaseWire{{Name: "decode", Ms: 0.1}}}}},
			},
			Report: Report{}},
	}
}

// viaJSON round-trips v through encoding/json into out.
func viaJSON(t *testing.T, v, out any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for i, req := range sampleRequests() {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			buf, err := EncodeRequest(req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeRequest(buf)
			if err != nil {
				t.Fatal(err)
			}
			// The JSON round trip defines the reference value: both
			// codecs must land on the same Go value.
			var want QueryRequest
			viaJSON(t, req, &want)
			if !reflect.DeepEqual(got, &want) {
				t.Fatalf("binary round trip diverges from JSON:\n  json:   %+v\n  binary: %+v", &want, got)
			}
		})
	}
}

// TestResponseEquivalence is the codec-equivalence contract: a response
// decoded from the binary stream is exactly the value the JSON round
// trip produces — nil-vs-empty, float bits, attrs maps and traces
// included.
func TestResponseEquivalence(t *testing.T) {
	for i, resp := range sampleResponses() {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			var buf bytes.Buffer
			if err := EncodeResponse(&buf, resp); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeResponse(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var want QueryResponse
			viaJSON(t, resp, &want)
			if !reflect.DeepEqual(got, &want) {
				t.Fatalf("binary round trip diverges from JSON:\n  json:   %+v\n  binary: %+v", &want, got)
			}
		})
	}
}

func TestBatchResponseEquivalence(t *testing.T) {
	var batch BatchQueryResponse
	for _, r := range sampleResponses() {
		batch.Results = append(batch.Results, *r)
	}
	var buf bytes.Buffer
	if err := EncodeBatchResponse(&buf, &batch); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchResponse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var want BatchQueryResponse
	viaJSON(t, &batch, &want)
	if !reflect.DeepEqual(got, &want) {
		t.Fatalf("batch binary round trip diverges from JSON")
	}
}

// TestChunkedIDs pushes a response across several id and record chunks
// and checks it reassembles losslessly with every Write bounded.
func TestChunkedIDs(t *testing.T) {
	const n = 100_000
	resp := &QueryResponse{Kind: "range", Count: n}
	resp.IDs = make([]uint64, n)
	for i := range resp.IDs {
		resp.IDs[i] = uint64(i) * 3
	}
	var w boundedWriter
	if err := EncodeResponse(&w, resp); err != nil {
		t.Fatal(err)
	}
	if w.max > MaxEncodedWrite {
		t.Fatalf("a single Write was %d bytes, above the %d bound", w.max, MaxEncodedWrite)
	}
	if w.writes < n*8/MaxFrame {
		t.Fatalf("only %d writes for %d ids — not actually chunked", w.writes, n)
	}
	got, err := DecodeResponse(bytes.NewReader(w.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.IDs, resp.IDs) || got.Count != n {
		t.Fatal("chunked ids did not reassemble")
	}
}

// boundedWriter records the largest single Write.
type boundedWriter struct {
	buf    bytes.Buffer
	max    int
	writes int
}

func (w *boundedWriter) Write(p []byte) (int, error) {
	if len(p) > w.max {
		w.max = len(p)
	}
	w.writes++
	return w.buf.Write(p)
}

func TestNegotiation(t *testing.T) {
	for _, tc := range []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"application/json", false},
		{"*/*", false},
		{ContentType, true},
		{"application/json, " + ContentType, true},
		{ContentType + ";q=0.9", true},
	} {
		if got := Accepts(tc.accept); got != tc.want {
			t.Errorf("Accepts(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
	if !IsBinary(ContentType + "; charset=x") {
		t.Error("IsBinary rejects parameterized content type")
	}
	if IsBinary("application/json") {
		t.Error("IsBinary accepts JSON")
	}
}

// TestMalformedInputs: hand-built corruption answers ErrMalformed, not
// a panic and not success.
func TestMalformedInputs(t *testing.T) {
	good, err := EncodeRequest(&QueryRequest{WireQuery: WireQuery{Kind: "point", Path: "/x"}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"short header":      good[:5],
		"truncated payload": good[:len(good)-2],
		"bad crc": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-1] ^= 0xFF
			return b
		}(),
		"huge length": {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0},
		"trailing garbage": func() []byte {
			return append(append([]byte(nil), good...), good...)
		}(),
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeRequest(body); !errors.Is(err, ErrMalformed) {
				t.Fatalf("DecodeRequest(%s) = %v, want ErrMalformed", name, err)
			}
		})
	}

	var buf bytes.Buffer
	if err := EncodeResponse(&buf, &QueryResponse{IDs: []uint64{1}, Count: 1}); err != nil {
		t.Fatal(err)
	}
	resp := buf.Bytes()
	if _, err := DecodeResponseBytes(resp[:len(resp)-3]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated response stream: %v, want ErrMalformed", err)
	}
	// A request frame where a response stream is expected.
	if _, err := DecodeResponseBytes(good); !errors.Is(err, ErrMalformed) {
		t.Fatalf("request frame as response: %v, want ErrMalformed", err)
	}
	if _, err := DecodeBatchResponseBytes(resp); !errors.Is(err, ErrMalformed) {
		t.Fatalf("single-response stream as batch: %v, want ErrMalformed", err)
	}
}
