package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"mime"
	"sort"
	"strings"
)

// Binary codec for /v1/query, negotiated per request with
// Accept/Content-Type: application/x-smartstore-bin (JSON stays the
// default). The codec reuses the WAL framing idiom: every frame is
//
//	[4B LE payload length][4B LE CRC-32C of payload][payload]
//
// with payload[0] naming the frame type. A request is exactly one
// frame. A response is a *stream* of frames — header, then id chunks,
// then record chunks, then a trailer carrying the report and flags —
// so a large range/top-k answer is encoded and written in bounded
// memory instead of one full-response buffer. A batch response is an
// envelope frame followed by each result's own frame stream.
//
// All integers are little-endian; signed ints travel as two's
// complement u64; floats as raw IEEE-754 bits (bit-exact, matching
// Go's JSON float64 round-trip). Strings and byte blobs are
// u32-length-prefixed. Slice fields that are omitempty in the JSON
// form are guarded by presence flags and decode to nil when absent,
// so a value decoded from either codec is identical; the trailer's
// idsNil flag preserves nil-vs-empty for the non-omitempty "ids"
// field. See DESIGN.md §5 for the byte-level reference.

// ContentType is the media type of the binary codec.
const ContentType = "application/x-smartstore-bin"

// Version is the codec version carried in request, response-header
// and batch-envelope frames. Decoders reject other versions.
const Version = 1

// MaxFrame bounds a single frame payload. Chunked response encoding
// keeps every frame far below it; a request (single or 256-query
// batch) fits trivially.
const MaxFrame = 4 << 20

// Frame types (payload[0]).
const (
	frameRequest        = 0x01 // one QueryRequest (single or batch)
	frameResponseHeader = 0x10 // starts a QueryResponse stream
	frameIDChunk        = 0x11 // a run of ids (+ aligned dists)
	frameRecordChunk    = 0x12 // a run of file records
	frameTrailer        = 0x13 // ends a QueryResponse stream
	frameBatchEnvelope  = 0x20 // starts a BatchQueryResponse
)

// Chunking knobs. idChunkSize ids per id frame (32 KiB of ids, 64 KiB
// with dists); record frames flush once the frame under construction
// passes recordChunkBytes.
const (
	idChunkSize      = 4096
	recordChunkBytes = 256 << 10
)

// frameHeaderSize is the fixed per-frame overhead: length + CRC.
const frameHeaderSize = 8

// MaxEncodedWrite is the largest single Write a response encoder
// issues — the bounded-memory guarantee tests assert against it.
const MaxEncodedWrite = MaxFrame + frameHeaderSize

// Trailer flag bits.
const (
	flagIDsNil    = 1 << 0 // IDs was nil (vs empty) — "ids" is not omitempty
	flagTruncated = 1 << 1
	flagCached    = 1 << 2
	flagPartial   = 1 << 3
	flagHasError  = 1 << 4
	flagHasTrace  = 1 << 5
)

// Request flag bits.
const (
	reqFlagBatch = 1 << 0 // Queries list present (batch request)
)

// Per-query flag bits.
const (
	qFlagIncludeRecords = 1 << 0
	qFlagIncludeDists   = 1 << 1
	qFlagHasAttrs       = 1 << 2
	qFlagHasLo          = 1 << 3
	qFlagHasHi          = 1 << 4
	qFlagHasPoint       = 1 << 5
)

// Per-record flag bits.
const (
	recFlagAttrsNil = 1 << 0 // Attrs map was nil (vs empty)
)

// ErrMalformed tags every decode failure: bad framing, CRC mismatch,
// short payload, unknown version or frame type, trailing garbage.
// Servers answer it with 400.
var ErrMalformed = errors.New("malformed binary frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func malformed(format string, args ...any) error {
	return fmt.Errorf("wire: %w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// IsBinary reports whether a Content-Type header names the binary
// codec (parameters ignored).
func IsBinary(contentType string) bool {
	if contentType == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(contentType)
	if err != nil {
		// Fall back to a trimmed comparison; an unparseable header
		// that still literally names the type counts.
		mt = strings.TrimSpace(strings.Split(contentType, ";")[0])
	}
	return strings.EqualFold(mt, ContentType)
}

// Accepts reports whether an Accept header asks for the binary codec.
// Only an explicit mention opts in — */* keeps the JSON default, so
// ordinary HTTP clients never see binary frames by surprise.
func Accepts(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.Split(part, ";")[0])
		if strings.EqualFold(mt, ContentType) {
			return true
		}
	}
	return false
}

// --- encoding primitives -------------------------------------------------

// enc builds one frame payload in place, with the 8-byte frame header
// reserved at the front so the finished frame goes out in one Write.
type enc struct {
	buf []byte
}

func (e *enc) begin(frameType byte) {
	if cap(e.buf) < frameHeaderSize+1 {
		e.buf = make([]byte, 0, 4096)
	}
	e.buf = e.buf[:frameHeaderSize]
	e.buf = append(e.buf, frameType)
}

func (e *enc) u8(v byte)    { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// finish seals the frame header and returns the complete frame.
func (e *enc) finish() ([]byte, error) {
	payload := e.buf[frameHeaderSize:]
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("wire: frame payload %d exceeds %d bytes", len(payload), MaxFrame)
	}
	binary.LittleEndian.PutUint32(e.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e.buf[4:8], crc32.Checksum(payload, castagnoli))
	return e.buf, nil
}

func (e *enc) report(r Report) {
	e.f64(r.LatencySec)
	e.i64(r.Messages)
	e.i64(int64(r.Hops))
	e.i64(int64(r.UnitsSearched))
	e.i64(int64(r.VersionChecked))
	e.f64(r.VersionLatencySec)
}

func (e *enc) wireQuery(q *WireQuery) {
	var flags byte
	if q.IncludeRecords {
		flags |= qFlagIncludeRecords
	}
	if q.IncludeDists {
		flags |= qFlagIncludeDists
	}
	if len(q.Attrs) > 0 {
		flags |= qFlagHasAttrs
	}
	if len(q.Lo) > 0 {
		flags |= qFlagHasLo
	}
	if len(q.Hi) > 0 {
		flags |= qFlagHasHi
	}
	if len(q.Point) > 0 {
		flags |= qFlagHasPoint
	}
	e.u8(flags)
	e.str(q.Kind)
	e.str(q.Path)
	e.str(q.Mode)
	e.i64(int64(q.K))
	e.i64(int64(q.Limit))
	if flags&qFlagHasAttrs != 0 {
		e.u32(uint32(len(q.Attrs)))
		for _, a := range q.Attrs {
			e.str(a)
		}
	}
	for _, vec := range [][]float64{q.Lo, q.Hi, q.Point} {
		if len(vec) == 0 {
			continue
		}
		e.u32(uint32(len(vec)))
		for _, v := range vec {
			e.f64(v)
		}
	}
}

func (e *enc) record(r *FileRecord) {
	var flags byte
	if r.Attrs == nil {
		flags |= recFlagAttrsNil
	}
	e.u8(flags)
	e.u64(r.ID)
	e.str(r.Path)
	e.u32(uint32(len(r.Attrs)))
	if len(r.Attrs) == 0 {
		return
	}
	names := make([]string, 0, len(r.Attrs))
	for name := range r.Attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e.str(name)
		e.f64(r.Attrs[name])
	}
}

// EncodeRequest encodes a QueryRequest as one binary frame — the body
// a binary-speaking client POSTs to /v1/query.
func EncodeRequest(req *QueryRequest) ([]byte, error) {
	var e enc
	e.begin(frameRequest)
	e.u8(Version)
	if len(req.Queries) > 0 {
		e.u8(reqFlagBatch)
		e.u32(uint32(len(req.Queries)))
		for i := range req.Queries {
			e.wireQuery(&req.Queries[i])
		}
	} else {
		e.u8(0)
		e.wireQuery(&req.WireQuery)
	}
	frame, err := e.finish()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(frame))
	copy(out, frame)
	return out, nil
}

// --- streaming response encoder ------------------------------------------

// ResponseEncoder streams one QueryResponse as a frame sequence:
// header, id chunks, record chunks, trailer. Every frame goes out in
// a single Write of at most MaxEncodedWrite bytes, so encoding a
// 100k-record answer never builds a full-response buffer. Methods
// must be called in order: WriteHeader, WriteIDs, WriteRecords,
// WriteTrailer; the first error sticks and the rest become no-ops.
type ResponseEncoder struct {
	w   io.Writer
	e   enc
	err error
}

// NewResponseEncoder returns an encoder streaming to w.
func NewResponseEncoder(w io.Writer) *ResponseEncoder {
	return &ResponseEncoder{w: w}
}

func (s *ResponseEncoder) flush() {
	if s.err != nil {
		return
	}
	frame, err := s.e.finish()
	if err != nil {
		s.err = err
		return
	}
	_, s.err = s.w.Write(frame)
}

// WriteHeader starts the response stream.
func (s *ResponseEncoder) WriteHeader(kind string) {
	if s.err != nil {
		return
	}
	s.e.begin(frameResponseHeader)
	s.e.u8(Version)
	s.e.str(kind)
	s.flush()
}

// WriteIDs streams the answer ids in chunks of idChunkSize, with
// dists (when non-empty) aligned chunk by chunk. len(dists) must be 0
// or len(ids).
func (s *ResponseEncoder) WriteIDs(ids []uint64, dists []float64) {
	if s.err != nil {
		return
	}
	if len(dists) != 0 && len(dists) != len(ids) {
		s.err = fmt.Errorf("wire: %d dists for %d ids", len(dists), len(ids))
		return
	}
	for off := 0; off < len(ids); off += idChunkSize {
		end := off + idChunkSize
		if end > len(ids) {
			end = len(ids)
		}
		s.e.begin(frameIDChunk)
		hasDists := byte(0)
		if len(dists) != 0 {
			hasDists = 1
		}
		s.e.u8(hasDists)
		s.e.u32(uint32(end - off))
		for _, id := range ids[off:end] {
			s.e.u64(id)
		}
		if hasDists != 0 {
			for _, d := range dists[off:end] {
				s.e.f64(d)
			}
		}
		s.flush()
		if s.err != nil {
			return
		}
	}
}

// WriteRecords streams inline file records, starting a new frame
// whenever the one under construction passes recordChunkBytes.
func (s *ResponseEncoder) WriteRecords(records []FileRecord) {
	if s.err != nil || len(records) == 0 {
		return
	}
	off := 0
	for off < len(records) {
		s.e.begin(frameRecordChunk)
		// Reserve the count and backfill once the chunk is cut.
		countAt := len(s.e.buf)
		s.e.u32(0)
		n := 0
		for off < len(records) && len(s.e.buf) < frameHeaderSize+recordChunkBytes {
			s.e.record(&records[off])
			off++
			n++
		}
		binary.LittleEndian.PutUint32(s.e.buf[countAt:], uint32(n))
		s.flush()
		if s.err != nil {
			return
		}
	}
}

// WriteTrailer ends the stream with the response's scalar state:
// count, flags, report, error, and (when present) the trace as
// length-prefixed JSON. resp's IDs/Dists/Records are NOT re-encoded
// here — only their nil-ness, via flagIDsNil.
func (s *ResponseEncoder) WriteTrailer(resp *QueryResponse) {
	if s.err != nil {
		return
	}
	var trace []byte
	if resp.Trace != nil {
		var err error
		trace, err = json.Marshal(resp.Trace)
		if err != nil {
			s.err = fmt.Errorf("wire: encode trace: %w", err)
			return
		}
	}
	s.e.begin(frameTrailer)
	var flags uint16
	if resp.IDs == nil {
		flags |= flagIDsNil
	}
	if resp.Truncated {
		flags |= flagTruncated
	}
	if resp.Cached {
		flags |= flagCached
	}
	if resp.Partial {
		flags |= flagPartial
	}
	if resp.Error != "" {
		flags |= flagHasError
	}
	if trace != nil {
		flags |= flagHasTrace
	}
	s.e.u16(flags)
	s.e.i64(int64(resp.Count))
	s.e.report(resp.Report)
	if resp.Error != "" {
		s.e.str(resp.Error)
	}
	if trace != nil {
		s.e.bytes(trace)
	}
	s.flush()
}

// Err returns the first error the encoder hit, if any.
func (s *ResponseEncoder) Err() error { return s.err }

// EncodeResponse streams resp to w as a complete frame sequence.
func EncodeResponse(w io.Writer, resp *QueryResponse) error {
	s := NewResponseEncoder(w)
	s.WriteHeader(resp.Kind)
	s.WriteIDs(resp.IDs, resp.Dists)
	s.WriteRecords(resp.Records)
	s.WriteTrailer(resp)
	return s.Err()
}

// EncodeBatchResponse streams a batch answer: an envelope frame with
// the result count, then each result's own frame sequence in order.
func EncodeBatchResponse(w io.Writer, batch *BatchQueryResponse) error {
	var e enc
	e.begin(frameBatchEnvelope)
	e.u8(Version)
	e.u32(uint32(len(batch.Results)))
	frame, err := e.finish()
	if err != nil {
		return err
	}
	if _, err := w.Write(frame); err != nil {
		return err
	}
	for i := range batch.Results {
		if err := EncodeResponse(w, &batch.Results[i]); err != nil {
			return err
		}
	}
	return nil
}

// --- decoding primitives -------------------------------------------------

// dec is a bounds-checked sticky-error reader over one frame payload,
// mirroring the WAL codec decoder: the first malformed read poisons
// every later one, so call sites check err once at the end.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = malformed(format, args...)
	}
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("payload truncated at offset %d (need %d of %d)", d.off, n, len(d.buf))
		return false
	}
	return true
}

func (d *dec) remaining() int { return len(d.buf) - d.off }

func (d *dec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) intVal() int  { return int(d.i64()) }

func (d *dec) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) rawBytes() []byte {
	n := int(d.u32())
	if !d.need(n) {
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// count reads an element count and rejects one that cannot fit the
// remaining payload at minSize bytes per element — the allocation
// bound that keeps a hostile 4-byte count from forcing a giant make.
func (d *dec) count(minSize int, what string) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n > d.remaining()/minSize+1 {
		d.fail("%s count %d exceeds payload", what, n)
		return 0
	}
	return n
}

func (d *dec) rejectTrailing(what string) {
	if d.err == nil && d.off != len(d.buf) {
		d.fail("%d trailing bytes after %s", len(d.buf)-d.off, what)
	}
}

func (d *dec) report() Report {
	return Report{
		LatencySec:        d.f64(),
		Messages:          d.i64(),
		Hops:              d.intVal(),
		UnitsSearched:     d.intVal(),
		VersionChecked:    d.intVal(),
		VersionLatencySec: d.f64(),
	}
}

func (d *dec) wireQuery() WireQuery {
	flags := d.u8()
	q := WireQuery{
		Kind:           d.str(),
		Path:           d.str(),
		Mode:           d.str(),
		K:              d.intVal(),
		Limit:          d.intVal(),
		IncludeRecords: flags&qFlagIncludeRecords != 0,
		IncludeDists:   flags&qFlagIncludeDists != 0,
	}
	if flags&qFlagHasAttrs != 0 {
		n := d.count(4, "attr")
		if d.err != nil {
			return q
		}
		q.Attrs = make([]string, n)
		for i := range q.Attrs {
			q.Attrs[i] = d.str()
		}
	}
	for _, dst := range []struct {
		flag byte
		vec  *[]float64
	}{{qFlagHasLo, &q.Lo}, {qFlagHasHi, &q.Hi}, {qFlagHasPoint, &q.Point}} {
		if flags&dst.flag == 0 {
			continue
		}
		n := d.count(8, "vector")
		if d.err != nil {
			return q
		}
		*dst.vec = make([]float64, n)
		for i := range *dst.vec {
			(*dst.vec)[i] = d.f64()
		}
	}
	return q
}

func (d *dec) record() FileRecord {
	flags := d.u8()
	r := FileRecord{ID: d.u64(), Path: d.str()}
	// Min attr pair: 4-byte name length + 8-byte value.
	n := d.count(12, "attr")
	if d.err != nil {
		return r
	}
	if flags&recFlagAttrsNil == 0 {
		r.Attrs = make(map[string]float64, n)
	} else if n != 0 {
		d.fail("nil-attrs record carries %d attrs", n)
		return r
	}
	for i := 0; i < n; i++ {
		name := d.str()
		v := d.f64()
		if d.err != nil {
			return r
		}
		r.Attrs[name] = v
	}
	return r
}

// splitFrame parses one frame off the front of buf, validating length
// and CRC, and returns (frameType, payload, rest).
func splitFrame(buf []byte) (byte, []byte, []byte, error) {
	if len(buf) < frameHeaderSize {
		return 0, nil, nil, malformed("frame header truncated (%d bytes)", len(buf))
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n == 0 || n > MaxFrame {
		return 0, nil, nil, malformed("frame payload length %d out of range", n)
	}
	if uint32(len(buf)-frameHeaderSize) < n {
		return 0, nil, nil, malformed("frame payload truncated (have %d of %d bytes)", len(buf)-frameHeaderSize, n)
	}
	payload := buf[frameHeaderSize : frameHeaderSize+int(n)]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(buf[4:8]); got != want {
		return 0, nil, nil, malformed("frame CRC mismatch (got %08x want %08x)", got, want)
	}
	return payload[0], payload, buf[frameHeaderSize+int(n):], nil
}

// readFrame reads one complete frame from r, validating length and
// CRC, and returns (frameType, payload).
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, malformed("frame header truncated: %v", err)
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > MaxFrame {
		return 0, nil, malformed("frame payload length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, malformed("frame payload truncated: %v", err)
		}
		return 0, nil, err
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return 0, nil, malformed("frame CRC mismatch (got %08x want %08x)", got, want)
	}
	return payload[0], payload, nil
}

// DecodeRequest decodes a binary /v1/query request body: exactly one
// request frame, nothing after it. Every failure wraps ErrMalformed.
func DecodeRequest(body []byte) (*QueryRequest, error) {
	ft, payload, rest, err := splitFrame(body)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, malformed("%d trailing bytes after request frame", len(rest))
	}
	if ft != frameRequest {
		return nil, malformed("unexpected frame type 0x%02x (want request)", ft)
	}
	d := &dec{buf: payload, off: 1}
	if v := d.u8(); d.err == nil && v != Version {
		return nil, malformed("unsupported codec version %d", v)
	}
	flags := d.u8()
	req := &QueryRequest{}
	if flags&reqFlagBatch != 0 {
		// Min query: flags + three empty strings + two ints.
		n := d.count(29, "query")
		if d.err != nil {
			return nil, d.err
		}
		if n == 0 {
			return nil, malformed("batch request with zero queries")
		}
		req.Queries = make([]WireQuery, n)
		for i := range req.Queries {
			req.Queries[i] = d.wireQuery()
		}
	} else {
		req.WireQuery = d.wireQuery()
	}
	d.rejectTrailing("request")
	if d.err != nil {
		return nil, d.err
	}
	return req, nil
}

// responseDecoder accumulates one QueryResponse from its frame
// stream.
type responseDecoder struct {
	resp      QueryResponse
	gotHeader bool
	done      bool
	hasDists  int8 // -1 unknown, 0 no, 1 yes
}

func (rd *responseDecoder) frame(ft byte, payload []byte) error {
	d := &dec{buf: payload, off: 1}
	switch ft {
	case frameResponseHeader:
		if rd.gotHeader {
			return malformed("duplicate response header frame")
		}
		if v := d.u8(); d.err == nil && v != Version {
			return malformed("unsupported codec version %d", v)
		}
		rd.resp.Kind = d.str()
		d.rejectTrailing("response header")
		rd.gotHeader = true
		rd.hasDists = -1
		return d.err
	case frameIDChunk:
		if !rd.gotHeader {
			return malformed("id chunk before response header")
		}
		hasDists := d.u8()
		n := d.count(8, "id")
		if d.err != nil {
			return d.err
		}
		want := int8(0)
		if hasDists != 0 {
			want = 1
		}
		if rd.hasDists == -1 {
			rd.hasDists = want
		} else if rd.hasDists != want {
			return malformed("inconsistent dists presence across id chunks")
		}
		for i := 0; i < n; i++ {
			rd.resp.IDs = append(rd.resp.IDs, d.u64())
		}
		if hasDists != 0 {
			for i := 0; i < n; i++ {
				rd.resp.Dists = append(rd.resp.Dists, d.f64())
			}
		}
		d.rejectTrailing("id chunk")
		return d.err
	case frameRecordChunk:
		if !rd.gotHeader {
			return malformed("record chunk before response header")
		}
		// Min record: flags + id + empty path + attr count.
		n := d.count(17, "record")
		if d.err != nil {
			return d.err
		}
		for i := 0; i < n; i++ {
			rec := d.record()
			if d.err != nil {
				return d.err
			}
			rd.resp.Records = append(rd.resp.Records, rec)
		}
		d.rejectTrailing("record chunk")
		return d.err
	case frameTrailer:
		if !rd.gotHeader {
			return malformed("trailer before response header")
		}
		flags := d.u16()
		rd.resp.Count = d.intVal()
		rd.resp.Report = d.report()
		rd.resp.Truncated = flags&flagTruncated != 0
		rd.resp.Cached = flags&flagCached != 0
		rd.resp.Partial = flags&flagPartial != 0
		if flags&flagHasError != 0 {
			rd.resp.Error = d.str()
		}
		if flags&flagHasTrace != 0 {
			traceJSON := d.rawBytes()
			if d.err == nil {
				tr := &TraceWire{}
				if err := json.Unmarshal(traceJSON, tr); err != nil {
					return malformed("trailer trace: %v", err)
				}
				rd.resp.Trace = tr
			}
		}
		d.rejectTrailing("trailer")
		if d.err != nil {
			return d.err
		}
		if flags&flagIDsNil != 0 {
			if len(rd.resp.IDs) != 0 {
				return malformed("ids-nil trailer after %d streamed ids", len(rd.resp.IDs))
			}
			rd.resp.IDs = nil
		} else if rd.resp.IDs == nil {
			rd.resp.IDs = []uint64{}
		}
		if len(rd.resp.Dists) != 0 && len(rd.resp.Dists) != len(rd.resp.IDs) {
			return malformed("%d dists for %d ids", len(rd.resp.Dists), len(rd.resp.IDs))
		}
		rd.done = true
		return nil
	default:
		return malformed("unexpected frame type 0x%02x in response stream", ft)
	}
}

// decodeResponseStream reads frames from r until a trailer completes
// one response.
func decodeResponseStream(r io.Reader) (*QueryResponse, error) {
	rd := &responseDecoder{}
	for !rd.done {
		ft, payload, err := readFrame(r)
		if err != nil {
			return nil, err
		}
		if err := rd.frame(ft, payload); err != nil {
			return nil, err
		}
	}
	return &rd.resp, nil
}

// DecodeResponse decodes one binary QueryResponse frame stream from r
// (the body of a single-query reply).
func DecodeResponse(r io.Reader) (*QueryResponse, error) {
	return decodeResponseStream(r)
}

// DecodeBatchResponse decodes a binary batch reply: envelope frame,
// then one response stream per result.
func DecodeBatchResponse(r io.Reader) (*BatchQueryResponse, error) {
	ft, payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if ft != frameBatchEnvelope {
		return nil, malformed("unexpected frame type 0x%02x (want batch envelope)", ft)
	}
	d := &dec{buf: payload, off: 1}
	if v := d.u8(); d.err == nil && v != Version {
		return nil, malformed("unsupported codec version %d", v)
	}
	n := int(d.u32())
	d.rejectTrailing("batch envelope")
	if d.err != nil {
		return nil, d.err
	}
	// An empty batch is never produced (the server rejects zero
	// queries), but tolerate it; bound n only loosely — each result
	// is itself framed and validated.
	if n < 0 || n > 1<<20 {
		return nil, malformed("batch result count %d out of range", n)
	}
	batch := &BatchQueryResponse{Results: make([]QueryResponse, 0, min(n, 4096))}
	for i := 0; i < n; i++ {
		resp, err := decodeResponseStream(r)
		if err != nil {
			return nil, err
		}
		batch.Results = append(batch.Results, *resp)
	}
	return batch, nil
}

// DecodeResponseBytes decodes a complete single-response body held in
// memory, rejecting trailing bytes — what the fuzz target and the
// client (which reads whole bodies) use.
func DecodeResponseBytes(body []byte) (*QueryResponse, error) {
	br := &byteFrames{buf: body}
	resp, err := decodeResponseStream(br)
	if err != nil {
		return nil, err
	}
	if len(br.buf) != 0 {
		return nil, malformed("%d trailing bytes after response", len(br.buf))
	}
	return resp, nil
}

// DecodeBatchResponseBytes decodes a complete batch body held in
// memory, rejecting trailing bytes.
func DecodeBatchResponseBytes(body []byte) (*BatchQueryResponse, error) {
	br := &byteFrames{buf: body}
	batch, err := DecodeBatchResponse(br)
	if err != nil {
		return nil, err
	}
	if len(br.buf) != 0 {
		return nil, malformed("%d trailing bytes after batch response", len(br.buf))
	}
	return batch, nil
}

// byteFrames adapts an in-memory buffer to the frame reader without
// copying payloads.
type byteFrames struct {
	buf []byte
}

func (b *byteFrames) Read(p []byte) (int, error) {
	if len(b.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, b.buf)
	b.buf = b.buf[n:]
	return n, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
