// Package wire owns the query-path wire format of the smartstored
// metadata API: the request/response types POST /v1/query exchanges,
// and two interchangeable codecs over them — the original JSON
// encoding (the default), and a length-prefixed CRC-framed binary
// encoding (codec.go) negotiated per request with
// Accept/Content-Type: application/x-smartstore-bin. The server
// (internal/server), the federating gateway (internal/gateway) and the
// typed client (internal/client) all speak through this package, so a
// response decoded from either codec is the same Go value.
//
// Attribute dimensions travel as their short names ("mtime",
// "read_bytes", ...); values are raw attribute units, exactly like the
// library API. See DESIGN.md §5 for the endpoint reference and the
// byte-level frame layout.
package wire

import (
	"fmt"

	smartstore "repro"
	"repro/internal/metadata"
)

// Report is the wire form of smartstore.QueryReport: the virtual-time
// accounting of one operation.
type Report struct {
	LatencySec        float64 `json:"latency_sec"`                   // simulated latency, seconds
	Messages          int64   `json:"messages"`                      // simulated network messages
	Hops              int     `json:"hops"`                          // semantic R-tree routing hops
	UnitsSearched     int     `json:"units_searched"`                // storage units probed
	VersionChecked    int     `json:"version_checked,omitempty"`     // §4.4 version chains consulted
	VersionLatencySec float64 `json:"version_latency_sec,omitempty"` // latency share of version checks
}

// FileRecord is one file's metadata on the wire. A zero ID on insert
// asks the server to allocate one; the response echoes the assignment.
type FileRecord struct {
	ID    uint64             `json:"id,omitempty"` // unique file id; 0 on insert = allocate
	Path  string             `json:"path"`         // full path, the point-query key
	Attrs map[string]float64 `json:"attrs"`        // attribute short name → raw value
}

// RecordFromFile converts a stored file to its wire form.
func RecordFromFile(f *metadata.File) FileRecord {
	attrs := make(map[string]float64, int(metadata.NumAttrs))
	for a := metadata.Attr(0); a < metadata.NumAttrs; a++ {
		attrs[a.String()] = f.Attrs[a]
	}
	return FileRecord{ID: f.ID, Path: f.Path, Attrs: attrs}
}

// File converts a wire record to a metadata file, resolving attribute
// names. Unnamed attributes default to zero.
func (r FileRecord) File() (*metadata.File, error) {
	if r.Path == "" {
		return nil, fmt.Errorf("file record missing path")
	}
	f := &metadata.File{ID: r.ID, Path: r.Path}
	for name, v := range r.Attrs {
		a, err := metadata.ParseAttr(name)
		if err != nil {
			return nil, err
		}
		f.Attrs[a] = v
	}
	return f, nil
}

// parseAttrs resolves a wire attribute-name list.
func parseAttrs(names []string) ([]metadata.Attr, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("empty attribute list")
	}
	attrs := make([]metadata.Attr, len(names))
	for i, n := range names {
		a, err := metadata.ParseAttr(n)
		if err != nil {
			return nil, err
		}
		attrs[i] = a
	}
	return attrs, nil
}

// AttrNames converts an attribute subset to its wire names.
func AttrNames(attrs []metadata.Attr) []string {
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = a.String()
	}
	return names
}

// WireQuery is the unified wire form of one smartstore.Query: a kind
// ("point", "range", "topk") plus that kind's dimensions plus per-query
// options. Unused fields are omitted.
type WireQuery struct {
	Kind  string    `json:"kind,omitempty"`  // "point", "range" or "topk"
	Path  string    `json:"path,omitempty"`  // point: the filename key
	Attrs []string  `json:"attrs,omitempty"` // range/topk: attribute dimension names
	Lo    []float64 `json:"lo,omitempty"`    // range: per-dimension lower bounds
	Hi    []float64 `json:"hi,omitempty"`    // range: per-dimension upper bounds
	Point []float64 `json:"point,omitempty"` // topk: the anchor point
	K     int       `json:"k,omitempty"`     // topk: neighbours wanted

	// Mode optionally overrides the store's query path for this query:
	// "offline" or "online" (empty = store default).
	Mode string `json:"mode,omitempty"`
	// Limit truncates the answer to at most Limit ids (0 = unlimited).
	Limit int `json:"limit,omitempty"`
	// IncludeRecords inlines full file records in the response.
	IncludeRecords bool `json:"include_records,omitempty"`
	// IncludeDists inlines each top-k answer id's true normalized
	// squared distance — what a federating gateway needs to merge
	// per-backend answers exactly. Ignored by point and range queries.
	IncludeDists bool `json:"include_dists,omitempty"`
}

// Query resolves the wire form to a validated smartstore.Query. Every
// failure wraps smartstore.ErrInvalidQuery.
func (wq WireQuery) Query() (smartstore.Query, error) {
	kind, err := smartstore.ParseQueryKind(wq.Kind)
	if err != nil {
		return smartstore.Query{}, err
	}
	mode, err := smartstore.ParseQueryMode(wq.Mode)
	if err != nil {
		return smartstore.Query{}, err
	}
	q := smartstore.Query{
		Kind:  kind,
		Path:  wq.Path,
		Lo:    wq.Lo,
		Hi:    wq.Hi,
		Point: wq.Point,
		K:     wq.K,
		Options: smartstore.QueryOptions{
			Mode:           mode,
			Limit:          wq.Limit,
			IncludeRecords: wq.IncludeRecords,
			IncludeDists:   wq.IncludeDists,
		},
	}
	if kind == smartstore.KindPoint {
		if wq.Path == "" {
			return smartstore.Query{}, fmt.Errorf("%w: point query missing path", smartstore.ErrInvalidQuery)
		}
	} else {
		attrs, err := parseAttrs(wq.Attrs)
		if err != nil {
			return smartstore.Query{}, fmt.Errorf("%w: %v", smartstore.ErrInvalidQuery, err)
		}
		q.Attrs = attrs
	}
	if err := q.Validate(); err != nil {
		return smartstore.Query{}, err
	}
	return q, nil
}

// QueryToWire converts a library query to its wire form — the encoding
// the typed client sends to POST /v1/query.
func QueryToWire(q smartstore.Query) WireQuery {
	wq := WireQuery{
		Kind:           q.Kind.String(),
		Path:           q.Path,
		Lo:             q.Lo,
		Hi:             q.Hi,
		Point:          q.Point,
		K:              q.K,
		Mode:           q.Options.Mode.String(),
		Limit:          q.Options.Limit,
		IncludeRecords: q.Options.IncludeRecords,
		IncludeDists:   q.Options.IncludeDists,
	}
	if len(q.Attrs) > 0 {
		wq.Attrs = AttrNames(q.Attrs)
	}
	return wq
}

// QueryRequest is the body of POST /v1/query: either one query inline
// (the embedded WireQuery fields) or a batch via Queries. A non-empty
// Queries takes precedence; the batch executes concurrently under one
// admission ticket.
type QueryRequest struct {
	WireQuery
	// Queries, when non-empty, makes the request a batch.
	Queries []WireQuery `json:"queries,omitempty"`
}

// BatchQueryResponse answers a batch POST /v1/query: one result per
// query, in request order. A query that failed after admission carries
// its message in Error with zeroed results.
type BatchQueryResponse struct {
	// Results holds one answer per request query, in request order.
	Results []QueryResponse `json:"results"`
}

// QueryResponse answers every query form — unified single, batch item,
// and the legacy point/range/topk shims. Cached reports whether the
// result was served from the query cache (in which case the report
// replays the accounting of the original execution); Records carries
// inline file records when the query asked for them; Truncated reports
// that a limit cut the answer; Error is set only on batch items that
// failed after admission.
type QueryResponse struct {
	Kind      string   `json:"kind,omitempty"`      // echo of the query kind
	IDs       []uint64 `json:"ids"`                 // answer ids (top-k: ascending distance)
	Count     int      `json:"count"`               // len(IDs) before any Limit cut
	Truncated bool     `json:"truncated,omitempty"` // a limit cut the answer
	Cached    bool     `json:"cached"`              // served from the query cache
	// Dists carries, aligned with IDs, each top-k candidate's true
	// normalized squared distance when the query asked for
	// include_dists.
	Dists []float64 `json:"dists,omitempty"`
	// Records inlines full file records when the query asked for them.
	Records []FileRecord `json:"records,omitempty"`
	// Partial flags an answer computed without every relevant backend —
	// a gateway degraded by a down member answers with what the healthy
	// backends hold instead of failing, and marks the gap here. A
	// single-store server never sets it.
	Partial bool `json:"partial,omitempty"`
	// Report carries the virtual-time accounting of the execution.
	Report Report `json:"report"`
	// Trace is the per-phase timing breakdown, present only when the
	// request carried the X-Smartstore-Trace header.
	Trace *TraceWire `json:"trace,omitempty"`
	// Error is set only on batch items that failed after admission.
	Error string `json:"error,omitempty"`
}

// TraceWire is the inline wire form of a request trace: real wall
// times of this request, not virtual-time accounting (that is Report).
// Phases appear in serving order: admission_wait, decode, cache_lookup,
// execute, merge (derived: execute minus the slowest shard), encode.
type TraceWire struct {
	// TotalMs is the request's total wall time, admission wait through
	// response encode.
	TotalMs float64 `json:"total_ms"`
	// Phases lists the serving phases in order with their wall times.
	Phases []PhaseWire `json:"phases"`
	// Shards breaks the execute phase down per engine shard.
	Shards []ShardWire `json:"shards,omitempty"`
	// Backends breaks a gateway's execute phase down per backend,
	// nesting each backend's own trace when the backend returned one.
	Backends []BackendTraceWire `json:"backends,omitempty"`
}

// BackendTraceWire is one backend's share of a gateway fan-out.
type BackendTraceWire struct {
	Backend string  `json:"backend"` // the backend's configured name
	Ms      float64 `json:"ms"`      // wall time of this backend's call
	// Down marks a backend that was skipped (marked unhealthy) or
	// failed mid-query.
	Down bool `json:"down,omitempty"`
	// Trace is the backend's own per-phase breakdown, propagated when
	// the gateway forwarded the trace header.
	Trace *TraceWire `json:"trace,omitempty"`
}

// PhaseWire is one named serving phase.
type PhaseWire struct {
	Name string  `json:"name"` // phase name (admission_wait, decode, ...)
	Ms   float64 `json:"ms"`   // phase wall time
}

// ShardWire is one shard's share of the execute phase. A pruned shard
// was rejected by its root MBR/Bloom filter without executing.
type ShardWire struct {
	Shard  int     `json:"shard"`            // shard index
	Ms     float64 `json:"ms"`               // shard execution wall time
	Pruned bool    `json:"pruned,omitempty"` // rejected by root MBR/Bloom, not executed
}

// ErrorResponse is the body of every non-2xx reply. Errors are always
// JSON, in both codecs — a client inspects the status code before it
// picks a decoder.
type ErrorResponse struct {
	Error string `json:"error"` // human-readable failure message
}
