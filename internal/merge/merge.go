// Package merge holds the exact result-merging logic shared by every
// layer that fans a query out and folds the partial answers back
// together: the sharded engine (internal/engine) across its shards, and
// the scale-out gateway (internal/gateway) across whole smartstored
// backends. Both layers must produce answers identical to a single
// store's, so the merge rules live in one place:
//
//   - union answers (point, range) concatenate partial id lists in
//     partition order — each partition holds a disjoint slice of the
//     population, so the union is exact;
//   - top-k answers keep the k globally nearest candidates by true
//     normalized distance under a bounded max-heap, ordered ascending by
//     (distance, id) — the same total order the per-cluster rerank uses,
//     so a merged answer matches the single-deployment answer on
//     identical data.
package merge

import (
	"container/heap"
	"sort"
)

// Cand is one top-k candidate: a file id with its true normalized
// squared distance to the query point.
type Cand struct {
	ID   uint64  // file id
	Dist float64 // normalized squared distance to the query point
}

// Less is the (distance, id) ascending total order every top-k answer
// is ranked by: nearer first, ties broken by ascending id.
func Less(a, b Cand) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// candHeap is a bounded max-heap over (dist, id): the root is the
// current worst of the k best, so a better candidate replaces it in
// O(log k) and the merge never materializes more than k entries.
type candHeap []Cand

func (h candHeap) Len() int           { return len(h) }
func (h candHeap) Less(i, j int) bool { return Less(h[j], h[i]) }
func (h candHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)        { *h = append(*h, x.(Cand)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK folds per-partition top-k candidate lists into the k globally
// nearest, ordered ascending by (distance, id). k values cross trust
// boundaries (the wire layer only requires k ≥ 1), so the heap's
// preallocation is bounded by the actual candidate count — it can never
// hold more entries than the partitions returned.
func TopK(lists [][]Cand, k int) []Cand {
	if k <= 0 {
		return nil
	}
	prealloc := 0
	for _, l := range lists {
		prealloc += len(l)
	}
	if k < prealloc {
		prealloc = k
	}
	h := make(candHeap, 0, prealloc)
	for _, l := range lists {
		for _, c := range l {
			if len(h) < k {
				heap.Push(&h, c)
			} else if Less(c, h[0]) {
				h[0] = c
				heap.Fix(&h, 0)
			}
		}
	}
	out := make([]Cand, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// Union concatenates per-partition id lists in partition order — the
// exact union of disjoint partitions. A duplicate id (two partitions
// claiming the same file — a misprovisioned federation, never a sharded
// engine) is kept once, first partition wins; the count of dropped
// duplicates is returned so the caller can surface the misconfiguration
// in its metrics instead of silently double-counting.
func Union(lists [][]uint64) (ids []uint64, duplicates int) {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	ids = make([]uint64, 0, total)
	if total == 0 {
		return ids, 0
	}
	seen := make(map[uint64]struct{}, total)
	for _, l := range lists {
		for _, id := range l {
			if _, dup := seen[id]; dup {
				duplicates++
				continue
			}
			seen[id] = struct{}{}
			ids = append(ids, id)
		}
	}
	return ids, duplicates
}
