package merge

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestTopKOrderAndBound(t *testing.T) {
	lists := [][]Cand{
		{{ID: 5, Dist: 0.5}, {ID: 9, Dist: 0.1}},
		{{ID: 2, Dist: 0.1}, {ID: 7, Dist: 0.9}},
		{{ID: 4, Dist: 0.3}},
	}
	got := TopK(lists, 3)
	want := []Cand{{ID: 2, Dist: 0.1}, {ID: 9, Dist: 0.1}, {ID: 4, Dist: 0.3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	if got := TopK(lists, 100); len(got) != 5 {
		t.Fatalf("k beyond candidates: got %d, want all 5", len(got))
	}
	if got := TopK(lists, 0); got != nil {
		t.Fatalf("k=0: got %v, want nil", got)
	}
}

// TestTopKMatchesSort cross-checks the bounded heap against the naive
// sort-everything reference on random inputs, including duplicate
// distances (id tie-break).
func TestTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var lists [][]Cand
		var all []Cand
		for p := 0; p < 4; p++ {
			n := rng.Intn(20)
			l := make([]Cand, n)
			for i := range l {
				l[i] = Cand{ID: uint64(rng.Intn(1000)), Dist: float64(rng.Intn(8)) / 8}
			}
			// Per-partition lists arrive ranked, like real shard answers.
			sort.Slice(l, func(i, j int) bool { return Less(l[i], l[j]) })
			lists = append(lists, l)
			all = append(all, l...)
		}
		k := 1 + rng.Intn(12)
		sort.Slice(all, func(i, j int) bool { return Less(all[i], all[j]) })
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := TopK(lists, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d k=%d: got %v, want %v", trial, k, got, want)
		}
	}
}

func TestUnion(t *testing.T) {
	ids, dups := Union([][]uint64{{1, 2}, {3}, {}, {4, 2}})
	if want := []uint64{1, 2, 3, 4}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("Union = %v, want %v", ids, want)
	}
	if dups != 1 {
		t.Fatalf("duplicates = %d, want 1", dups)
	}
	ids, dups = Union(nil)
	if len(ids) != 0 || dups != 0 {
		t.Fatalf("empty union: %v, %d", ids, dups)
	}
}
