package merge_test

import (
	"fmt"

	"repro/internal/merge"
)

// Two partitions each answer a top-3 query with their local nearest
// candidates; TopK folds them into the global top-3 under the
// (distance, id) total order, and Union folds the partitions' range
// answers while flagging a duplicated id.
func Example() {
	shard0 := []merge.Cand{{ID: 4, Dist: 0.10}, {ID: 9, Dist: 0.35}, {ID: 1, Dist: 0.90}}
	shard1 := []merge.Cand{{ID: 7, Dist: 0.20}, {ID: 2, Dist: 0.35}, {ID: 5, Dist: 0.50}}

	for _, c := range merge.TopK([][]merge.Cand{shard0, shard1}, 3) {
		fmt.Printf("id=%d dist=%.2f\n", c.ID, c.Dist)
	}

	ids, dups := merge.Union([][]uint64{{4, 9, 1}, {7, 2, 4}})
	fmt.Println(ids, dups)
	// Output:
	// id=4 dist=0.10
	// id=7 dist=0.20
	// id=2 dist=0.35
	// [4 9 1 7 2] 1
}
