// Sharded-engine coverage: a multi-shard store hammered by concurrent
// queries and mutations must be race-clean (run with -race), and once
// quiesced its merged fan-out answers must equal the single-shard
// ground truth — sharding changes the execution, never the answer.
package smartstore_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	smartstore "repro"
)

// cloneFiles deep-copies a trace's files so two stores never share
// record pointers (Modify writes stored records in place).
func cloneFiles(files []*smartstore.File) []*smartstore.File {
	out := make([]*smartstore.File, len(files))
	for i, f := range files {
		cp := *f
		out[i] = &cp
	}
	return out
}

// buildShardPair builds the same corpus twice: once unsharded (the
// ground truth) and once across shards. OnLine mode makes complex-query
// answers exact on the propagated snapshot, so the two stores must
// agree whenever they hold the same data.
func buildShardPair(t testing.TB, shards int) (s1, sN *smartstore.Store, set *smartstore.TraceSet) {
	t.Helper()
	set, err := smartstore.GenerateTrace("MSN", 2400, 17)
	if err != nil {
		t.Fatal(err)
	}
	s1, err = smartstore.Build(cloneFiles(set.Files),
		smartstore.Config{Units: 24, Seed: 17, Mode: smartstore.OnLine})
	if err != nil {
		t.Fatal(err)
	}
	sN, err = smartstore.Build(cloneFiles(set.Files),
		smartstore.Config{Units: 24, Shards: shards, Seed: 17, Mode: smartstore.OnLine})
	if err != nil {
		t.Fatal(err)
	}
	return s1, sN, set
}

// assertSameAnswers compares every query shape between the ground-truth
// store and the sharded store. Top-k answers must agree as ordered
// lists (both sides break distance ties by ascending id); range and
// point answers as sets.
func assertSameAnswers(t *testing.T, s1, sN *smartstore.Store, set *smartstore.TraceSet) {
	t.Helper()
	ctx := context.Background()
	attrs := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes}

	for i := 0; i < 12; i++ {
		f := set.Files[(i*211)%len(set.Files)]
		hi := f.Attrs[smartstore.AttrMTime]
		rq := smartstore.NewRangeQuery(attrs, []float64{0, 0}, []float64{hi, 1e12})
		a, err := s1.Do(ctx, rq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sN.Do(ctx, rq)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.IDs) != len(b.IDs) {
			t.Fatalf("range %d: ground truth %d ids, sharded %d", i, len(a.IDs), len(b.IDs))
		}
		in := make(map[uint64]bool, len(a.IDs))
		for _, id := range a.IDs {
			in[id] = true
		}
		for _, id := range b.IDs {
			if !in[id] {
				t.Fatalf("range %d: sharded returned id %d missing from ground truth", i, id)
			}
		}

		tq := smartstore.NewTopKQuery(attrs,
			[]float64{f.Attrs[smartstore.AttrMTime], f.Attrs[smartstore.AttrReadBytes]}, 8)
		ka, err := s1.Do(ctx, tq)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := sN.Do(ctx, tq)
		if err != nil {
			t.Fatal(err)
		}
		if len(ka.IDs) != len(kb.IDs) {
			t.Fatalf("topk %d: ground truth %d ids, sharded %d", i, len(ka.IDs), len(kb.IDs))
		}
		for j := range ka.IDs {
			if ka.IDs[j] != kb.IDs[j] {
				t.Fatalf("topk %d[%d]: ground truth %d, sharded %d\n%v\n%v",
					i, j, ka.IDs[j], kb.IDs[j], ka.IDs, kb.IDs)
			}
		}

		pa, err := s1.Do(ctx, smartstore.NewPointQuery(f.Path))
		if err != nil {
			t.Fatal(err)
		}
		pb, err := sN.Do(ctx, smartstore.NewPointQuery(f.Path))
		if err != nil {
			t.Fatal(err)
		}
		if len(pa.IDs) != len(pb.IDs) {
			t.Fatalf("point %d: ground truth %d ids, sharded %d", i, len(pa.IDs), len(pb.IDs))
		}
	}
}

// TestShardedStoreMatchesSingleShardUnderStress drives concurrent
// Do/Insert/Delete/Flush across a 4-shard store while mirroring every
// mutation onto an unsharded ground-truth store, then quiesces both and
// asserts the merged fan-out answers equal the single-shard answers.
func TestShardedStoreMatchesSingleShardUnderStress(t *testing.T) {
	s1, s4, set := buildShardPair(t, 4)
	assertSameAnswers(t, s1, s4, set) // pre-stress: identical corpora agree

	ctx := context.Background()
	attrs := []smartstore.Attr{smartstore.AttrMTime, smartstore.AttrReadBytes}
	const (
		readers    = 4
		writers    = 3
		iterations = 50
	)
	var nextID atomic.Uint64
	nextID.Store(s1.MaxFileID())

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				f := set.Files[(r*131+i*17)%len(set.Files)]
				switch i % 4 {
				case 0:
					q := smartstore.NewRangeQuery(attrs,
						[]float64{0, 0}, []float64{f.Attrs[smartstore.AttrMTime], 1e12})
					if _, err := s4.Do(ctx, q); err != nil {
						t.Errorf("range under stress: %v", err)
					}
				case 1:
					q := smartstore.NewTopKQuery(attrs,
						[]float64{f.Attrs[smartstore.AttrMTime], f.Attrs[smartstore.AttrReadBytes]}, 5)
					if res, err := s4.Do(ctx, q); err != nil {
						t.Errorf("topk under stress: %v", err)
					} else if len(res.IDs) > 5 {
						t.Errorf("top-5 returned %d ids", len(res.IDs))
					}
				case 2:
					if _, err := s4.Do(ctx, smartstore.NewPointQuery(f.Path)); err != nil {
						t.Errorf("point under stress: %v", err)
					}
				case 3:
					if st := s4.Stats(); st.Files == 0 || len(st.PerShard) != 4 {
						t.Errorf("stats degenerate mid-run: %+v", st)
					}
				}
			}
		}(r)
	}
	// Writers mirror every mutation onto both stores so the corpora
	// stay identical; each store gets its own record copies.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				switch i % 4 {
				case 0:
					id := nextID.Add(1)
					src := set.Files[(w*37+i)%len(set.Files)]
					mk := func() *smartstore.File {
						return &smartstore.File{
							ID:    id,
							Path:  fmt.Sprintf("/shard/w%d/f%d", w, i),
							Attrs: src.Attrs,
						}
					}
					if _, err := s1.Insert(mk()); err != nil {
						t.Errorf("ground-truth insert: %v", err)
					}
					if _, err := s4.Insert(mk()); err != nil {
						t.Errorf("sharded insert: %v", err)
					}
				case 1:
					f := *set.Files[(w*53+i*29)%len(set.Files)]
					f.Attrs[smartstore.AttrSize] += 1
					g := f
					if _, _, err := s1.Modify(&f); err != nil {
						t.Errorf("ground-truth modify: %v", err)
					}
					if _, _, err := s4.Modify(&g); err != nil {
						t.Errorf("sharded modify: %v", err)
					}
				case 2:
					id := nextID.Add(1)
					src := set.Files[(w*41+i)%len(set.Files)]
					mk := func() []*smartstore.File {
						return []*smartstore.File{{
							ID:    id,
							Path:  fmt.Sprintf("/shard/w%d/b%d", w, i),
							Attrs: src.Attrs,
						}}
					}
					if _, err := s1.InsertBatch(mk()); err != nil {
						t.Errorf("ground-truth batch: %v", err)
					}
					if _, err := s4.InsertBatch(mk()); err != nil {
						t.Errorf("sharded batch: %v", err)
					}
					if _, found, _ := s1.Delete(id); !found {
						t.Errorf("ground-truth delete of %d not found", id)
					}
					if _, found, _ := s4.Delete(id); !found {
						t.Errorf("sharded delete of %d not found", id)
					}
				case 3:
					s1.Flush()
					s4.Flush()
				}
			}
		}(w)
	}
	wg.Wait()

	if s4.Epoch() == 0 {
		t.Fatal("sharded mutation epoch never advanced")
	}
	// Quiesce: propagate all pending changes on both stores, then the
	// merged answers must again equal the single-shard ground truth.
	s1.Flush()
	s4.Flush()
	if f1, f4 := s1.Stats().Files, s4.Stats().Files; f1 != f4 {
		t.Fatalf("file counts diverged: ground truth %d, sharded %d", f1, f4)
	}
	assertSameAnswers(t, s1, s4, set)
}

// TestShardedEpochComposition checks that the store-wide epoch is the
// sum of per-shard epochs and stays monotonic across mixed mutations.
func TestShardedEpochComposition(t *testing.T) {
	_, s4, set := buildShardPair(t, 4)
	if s4.Epoch() != 0 {
		t.Fatalf("fresh epoch %d", s4.Epoch())
	}
	last := uint64(0)
	for i := 0; i < 20; i++ {
		src := set.Files[i*7]
		f := &smartstore.File{
			ID:    s4.MaxFileID() + 1,
			Path:  fmt.Sprintf("/epoch/s%d.dat", i),
			Attrs: src.Attrs,
		}
		if _, err := s4.Insert(f); err != nil {
			t.Fatal(err)
		}
		if e := s4.Epoch(); e != last+1 {
			t.Fatalf("insert %d: epoch %d, want %d", i, e, last+1)
		}
		last++
	}
	var perShardSum uint64
	for _, sh := range s4.Stats().PerShard {
		perShardSum += sh.Epoch
	}
	if perShardSum != s4.Epoch() {
		t.Fatalf("per-shard epochs sum to %d, composed epoch %d", perShardSum, s4.Epoch())
	}
}
